"""End-to-end cluster runs: completeness, determinism, policy ordering."""

import pytest

from repro.cluster import ClusterConfig, POLICY_ORDER, run_cluster
from repro.experiments.fig_cluster import GENERATIONS, MACHINES, SERVICES
from repro.sim import derive_seed
from repro.workloads import social_network_services

ALL_SERVICES = {s.name: s for s in social_network_services()}


def services(*names):
    return [ALL_SERVICES[name] for name in names]


class TestSmoke:
    @pytest.mark.parametrize("policy", POLICY_ORDER)
    def test_every_policy_completes_every_request(self, policy):
        config = ClusterConfig(
            policy=policy,
            machines=3,
            requests_per_service=40,
            rate_rps=30000.0,
            seed=0,
        )
        result = run_cluster(services("UniqId", "StoreP"), config)
        assert result.arrivals == 80
        assert result.completed == 80
        assert result.lost == 0 and result.total_censored() == 0
        assert result.p99_ns() > 0

    def test_machines_share_one_environment(self):
        config = ClusterConfig(machines=3, requests_per_service=5,
                               rate_rps=10000.0, seed=0)
        result = run_cluster(services("UniqId"), config)
        cluster = result.cluster
        assert len({id(m.server.env) for m in cluster.machines}) == 1
        assert cluster.machines[0].server.env is cluster.env

    def test_work_spreads_across_the_fleet(self):
        config = ClusterConfig(policy="round-robin", machines=3,
                               requests_per_service=30, rate_rps=30000.0,
                               seed=0)
        result = run_cluster(services("UniqId", "Login"), config)
        dispatched = [m["dispatched"] for m in result.machine_stats]
        assert all(d > 0 for d in dispatched)
        assert sum(dispatched) == result.completed

    def test_heterogeneous_fleet_cycles_generations(self):
        config = ClusterConfig(machines=3, generations=("haswell", "icelake"))
        assert config.machine_params_for(0).generation.name == "haswell"
        assert config.machine_params_for(1).generation.name == "icelake"
        assert config.machine_params_for(2).generation.name == "haswell"


class TestDeterminism:
    def _run(self):
        config = ClusterConfig(
            policy="power-of-two",
            machines=3,
            generations=GENERATIONS,
            requests_per_service=40,
            rate_rps=50000.0,
            arrival_mode="mmpp",
            seed=7,
        )
        return run_cluster(services(*SERVICES), config)

    def test_identical_config_identical_results(self):
        first, second = self._run(), self._run()
        assert first.p99_ns() == second.p99_ns()
        assert first.mean_ns() == second.mean_ns()
        assert first.elapsed_ns == second.elapsed_ns
        assert first.machine_stats == second.machine_stats

    def test_common_random_numbers_across_policies(self):
        """Same seed, different policy: identical request sequences.

        The front door samples request bodies from cluster-level
        streams, so runs that differ only in the balancing policy see
        the same arrivals — the comparison isolates routing.
        """
        from repro.cluster import SimulatedCluster

        def sample(policy):
            cluster = SimulatedCluster(
                ClusterConfig(policy=policy, machines=2, seed=5)
            )
            spec = ALL_SERVICES["StoreP"]
            return tuple(
                (cluster.make_request(spec).wire_size,
                 tuple(sorted(cluster.make_request(spec).state.items())))
                for _ in range(20)
            )

        samples = {sample(policy) for policy in POLICY_ORDER}
        assert len(samples) == 1


class TestPolicyOrdering:
    def test_occupancy_aware_policies_beat_round_robin_under_bursts(self):
        """The fig_cluster acceptance claim, at its deepest load point.

        On a heterogeneous fleet near saturation under MMPP bursts,
        accel-aware and power-of-two routing must both produce a lower
        fleet P99 than state-blind round-robin.
        """
        load = 80000.0
        p99 = {}
        for policy in ("round-robin", "power-of-two", "accel-aware"):
            config = ClusterConfig(
                policy=policy,
                machines=MACHINES,
                generations=GENERATIONS,
                requests_per_service=200,
                seed=derive_seed(0, "fig_cluster", load),
                arrival_mode="mmpp",
                rate_rps=load,
            )
            result = run_cluster(services(*SERVICES), config)
            assert result.completed == result.arrivals
            p99[policy] = result.p99_ns()
        assert p99["power-of-two"] < p99["round-robin"]
        assert p99["accel-aware"] < p99["round-robin"]

"""Unit tests of the cluster fluid tier: policies, handoff, accounting."""

import pytest

from repro.cluster import ClusterConfig, FluidConfig, run_cluster
from repro.obs import ObsConfig
from repro.sim.fluid import (
    EXACT,
    FLUID,
    StaticTierPolicy,
    UtilizationTierPolicy,
)
from repro.workloads import social_network_services

ALL_SERVICES = {s.name: s for s in social_network_services()}


def services(*names):
    return [ALL_SERVICES[name] for name in names]


class TestTierPolicies:
    def test_static_policy_pins_membership(self):
        policy = StaticTierPolicy([1, 3])
        assert policy.decide(1, EXACT, 0.99) == FLUID
        assert policy.decide(3, FLUID, 0.0) == FLUID
        assert policy.decide(0, FLUID, 0.0) == EXACT

    def test_hysteresis_has_a_dead_band(self):
        policy = UtilizationTierPolicy(go_fluid_below=0.4, go_exact_above=0.75)
        # Cold exact machine goes fluid; hot fluid machine goes exact.
        assert policy.decide(0, EXACT, 0.2) == FLUID
        assert policy.decide(0, FLUID, 0.9) == EXACT
        # Inside the dead band, both tiers are sticky (no flapping).
        assert policy.decide(0, EXACT, 0.6) == EXACT
        assert policy.decide(0, FLUID, 0.6) == FLUID

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            UtilizationTierPolicy(go_fluid_below=0.8, go_exact_above=0.5)
        with pytest.raises(ValueError):
            FluidConfig(policy="nonsense").make_policy()


def _run(fluid, seed=0, requests=100, failures=(), obs=None):
    config = ClusterConfig(
        policy="round-robin",
        machines=4,
        requests_per_service=requests,
        rate_rps=30000.0,
        seed=seed,
        arrival_mode="poisson",
        warmup_fraction=0.0,
        failures=failures,
        obs=obs,
        fluid=fluid,
    )
    return run_cluster(services("UniqId", "StoreP"), config)


class TestAbsorption:
    def test_static_fluid_machines_absorb_after_calibration(self):
        result = _run(
            FluidConfig(policy="static", fluid_machines=(2, 3),
                        calibrate_requests=15)
        )
        stats = result.fluid_stats
        assert stats["absorbed"] > 0
        assert stats["fluid_fraction"] == 0.5
        # Absorbed work is accounted analytically, not lost.
        assert result.merged_completed() + stats["residual_mass"] == (
            pytest.approx(result.arrivals, abs=0.5)
        )
        # Fluid machines stopped dispatching discrete work once fluid.
        fluid_dispatch = [
            m["dispatched"] for m in result.machine_stats if m["index"] in (2, 3)
        ]
        exact_dispatch = [
            m["dispatched"] for m in result.machine_stats if m["index"] in (0, 1)
        ]
        assert sum(exact_dispatch) > sum(fluid_dispatch)

    def test_explicit_service_times_skip_calibration(self):
        # With overrides for every service the tier is ready at t=0 and
        # absorbs from the very first request routed to a fluid machine.
        overrides = {"UniqId": 100_000.0, "StoreP": 500_000.0}
        result = _run(
            FluidConfig(policy="static", fluid_machines=(2, 3),
                        service_time_ns=overrides)
        )
        per_service = result.fluid_stats["services"]
        assert per_service["UniqId"]["arrived_mass"] > 0
        # The fluid mean tracks the override (queueing adds on top).
        assert per_service["UniqId"]["mean_latency_ns"] >= 100_000.0

    def test_service_result_merges_fluid_estimates(self):
        result = _run(
            FluidConfig(policy="static", fluid_machines=(2, 3),
                        calibrate_requests=15)
        )
        merged = 0.0
        for name, service in result.services.items():
            assert service.fluid_completed_mass > 0, name
            assert service.merged_mean_ns() > 0
            assert service.merged_p99_ns() > 0
            merged += service.merged_completed()
        assert merged == pytest.approx(result.merged_completed(), rel=1e-9)


class TestMaterialization:
    def _spike_config(self):
        # Auto policy with a tight dead band plus a mid-run load spike
        # (via mmpp bursts) encourages fluid -> exact flips.
        return FluidConfig(
            policy="auto",
            calibrate_requests=10,
            go_fluid_below=0.5,
            go_exact_above=0.55,
            quantum_ns=0.2e6,
            effective_servers=4,
        )

    def _run_spiky(self, seed=0):
        config = ClusterConfig(
            policy="round-robin",
            machines=3,
            requests_per_service=120,
            rate_rps=45000.0,
            seed=seed,
            arrival_mode="mmpp",
            mmpp_burst_factor=8.0,
            mmpp_burst_share=0.3,
            mmpp_dwell_ns=1.5e6,
            warmup_fraction=0.0,
            fluid=self._spike_config(),
        )
        return run_cluster(services("UniqId", "StoreP"), config)

    def test_auto_policy_materializes_on_flips_and_conserves_work(self):
        result = self._run_spiky()
        stats = result.fluid_stats
        assert stats["tier_flips"] > 0
        # Everything offered is either exactly completed, analytically
        # completed, still queued as mass, shed or lost. Materialization
        # rounds fractional mass to whole requests (floor + Bernoulli),
        # so the discrete surplus (count minus removed mass) is part of
        # the exact balance.
        rounding = stats["materialized"] - stats["materialized_mass"]
        accounted = (
            result.merged_completed()
            - rounding
            + stats["residual_mass"]
            + result.shed
            + result.lost
        )
        assert accounted == pytest.approx(result.arrivals, abs=0.5)
        if stats["materialized"]:
            # Materialized requests completed as real discrete samples.
            assert result.completed > 0

    def test_materialization_is_deterministic(self):
        a = self._run_spiky(seed=5)
        b = self._run_spiky(seed=5)
        assert a.fluid_stats == b.fluid_stats
        assert a.recorder.samples == b.recorder.samples
        assert a.elapsed_ns == b.elapsed_ns


class TestFailuresAndObs:
    def test_fluid_machine_failure_loses_mass_not_the_run(self):
        from repro.cluster import MachineFailure

        result = _run(
            FluidConfig(policy="static", fluid_machines=(2, 3),
                        calibrate_requests=10),
            failures=(MachineFailure(at_ns=2.5e6, machine=2),),
        )
        stats = result.fluid_stats
        assert result.machines_failed == 1
        # The dead machine's queued mass is accounted as lost, and the
        # remaining work still balances.
        accounted = (
            result.merged_completed()
            + stats["residual_mass"]
            + stats["lost_mass"]
            + result.shed
            + result.lost
        )
        assert accounted == pytest.approx(result.arrivals, abs=1.0)

    def test_fluid_gauges_reach_the_dashboard(self):
        from repro.obs.dashboard import Dashboard

        obs = ObsConfig(metrics=True, telemetry=True)
        result = _run(
            FluidConfig(policy="static", fluid_machines=(2, 3),
                        calibrate_requests=10),
            obs=obs,
        )
        cluster = result.cluster
        dashboard = Dashboard(cluster.bus)
        # Replay the bus's ring buffer into a fresh dashboard view.
        for event in list(cluster.bus.events):
            dashboard._on_event(event)
        assert "cluster:fluid_fraction" in dashboard.gauges
        snapshot = dashboard.snapshot()
        assert "fluid tier" in snapshot
        assert "% of fleet" in snapshot

    def test_no_fluid_config_publishes_no_fluid_gauges(self):
        obs = ObsConfig(metrics=True, telemetry=True)
        result = _run(None, obs=obs)
        names = {
            event.name
            for event in list(result.cluster.bus.events)
            if type(event).__name__ == "MetricSample"
        }
        assert "cluster:fluid_fraction" not in names

"""HealthMonitor: passive scoring, hysteresis ejection, trials, probes.

Unit tests drive the monitor against a fake cluster so every state
transition is pinned exactly; the integration tests check the plane
inside ``run_cluster`` — it ejects a gray-limping machine, and when it
has nothing to do it is byte-inert (RNG-free observer).
"""

import pytest

from repro.cluster import (
    ClusterConfig,
    HealthConfig,
    HealthMonitor,
    HealthState,
    MachineHealth,
    run_cluster,
)
from repro.faults import FaultConfig
from repro.sim import Environment
from repro.workloads import social_network_services

SERVICES = {s.name: s for s in social_network_services()}


class FakeMachine:
    def __init__(self, index, pressure=0.0):
        self.index = index
        self.pressure = pressure

    def queue_pressure(self):
        return self.pressure


class FakeCluster:
    def __init__(self, machines, bus=None):
        self.env = Environment()
        self.machines = machines
        self.bus = bus

    def routable_machines(self):
        return list(self.machines)


CONFIG = HealthConfig(
    latency_threshold_ns=1000.0,
    error_threshold=0.5,
    ewma_alpha=1.0,  # no smoothing: each observation IS the EWMA
    eject_after=3,
    readmit_after_ns=1e6,
    trial_requests=2,
)


def make_monitor(n_machines=3, config=CONFIG, bus=None, pressure=0.0):
    machines = [FakeMachine(i, pressure) for i in range(n_machines)]
    cluster = FakeCluster(machines, bus=bus)
    return HealthMonitor(cluster, config), machines, cluster


class TestConfigValidation:
    @pytest.mark.parametrize(
        "kw",
        [
            dict(latency_threshold_ns=0.0),
            dict(ewma_alpha=0.0),
            dict(ewma_alpha=1.5),
            dict(error_threshold=1.5),
            dict(eject_after=0),
            dict(trial_requests=0),
            dict(readmit_after_ns=-1.0),
            dict(probe_interval_ns=-1.0),
            dict(probe_max=-1),
            dict(min_routable=0),
        ],
    )
    def test_rejects_bad_knobs(self, kw):
        with pytest.raises(ValueError):
            HealthConfig(**kw)

    def test_defaults_validate(self):
        HealthConfig()


class TestMachineHealth:
    def test_ewma_folds_latency(self):
        health = MachineHealth(HealthConfig(ewma_alpha=0.5))
        health.update(100.0, ok=True)
        assert health.ewma_latency_ns == 100.0  # first sample seeds
        health.update(200.0, ok=True)
        assert health.ewma_latency_ns == 150.0

    def test_unhealthy_on_latency_or_error(self):
        config = HealthConfig(
            latency_threshold_ns=1000.0, error_threshold=0.5, ewma_alpha=1.0
        )
        slow = MachineHealth(config)
        slow.update(2000.0, ok=True)
        assert slow.unhealthy
        erroring = MachineHealth(config)
        erroring.update(10.0, ok=False)
        assert erroring.unhealthy

    def test_score_monotone_in_badness(self):
        config = HealthConfig(latency_threshold_ns=1000.0, ewma_alpha=1.0)
        clean = MachineHealth(config)
        clean.update(500.0, ok=True)
        assert clean.score == 1.0
        slow = MachineHealth(config)
        slow.update(4000.0, ok=True)
        assert slow.score == 0.25
        dead = MachineHealth(config)
        dead.update(4000.0, ok=False)
        assert dead.score == 0.0


class TestEjectionHysteresis:
    def test_streak_below_threshold_never_ejects(self):
        monitor, machines, _ = make_monitor()
        for _ in range(CONFIG.eject_after - 1):
            monitor.observe(machines[0], 5000.0, ok=True)
        assert monitor.member(machines[0]).state == HealthState.HEALTHY
        assert monitor.ejections == 0

    def test_consecutive_unhealthy_signals_eject(self):
        monitor, machines, _ = make_monitor()
        for _ in range(CONFIG.eject_after):
            monitor.observe(machines[0], 5000.0, ok=True)
        assert monitor.member(machines[0]).state == HealthState.EJECTED
        assert monitor.ejections == 1

    def test_healthy_signal_resets_the_streak(self):
        monitor, machines, _ = make_monitor()
        monitor.observe(machines[0], 5000.0, ok=True)
        monitor.observe(machines[0], 5000.0, ok=True)
        monitor.observe(machines[0], 1.0, ok=True)  # EWMA drops below
        for _ in range(CONFIG.eject_after - 1):
            monitor.observe(machines[0], 5000.0, ok=True)
        assert monitor.member(machines[0]).state == HealthState.HEALTHY

    def test_min_routable_floor_blocks_ejection(self):
        monitor, machines, _ = make_monitor(
            n_machines=1,
            config=HealthConfig(
                latency_threshold_ns=1000.0,
                ewma_alpha=1.0,
                eject_after=2,
                min_routable=1,
            ),
        )
        for _ in range(10):
            monitor.observe(machines[0], 5000.0, ok=True)
        assert monitor.member(machines[0]).state == HealthState.HEALTHY
        assert monitor.ejections == 0

    def test_ejected_machines_take_no_further_signals(self):
        monitor, machines, _ = make_monitor()
        for _ in range(CONFIG.eject_after):
            monitor.observe(machines[0], 5000.0, ok=True)
        ejections = monitor.ejections
        monitor.observe(machines[0], 5000.0, ok=True)  # straggler
        assert monitor.ejections == ejections
        assert monitor.member(machines[0]).state == HealthState.EJECTED


class TestTrialFlow:
    def _ejected(self):
        monitor, machines, cluster = make_monitor()
        for _ in range(CONFIG.eject_after):
            monitor.observe(machines[0], 5000.0, ok=True)
        assert monitor.member(machines[0]).state == HealthState.EJECTED
        return monitor, machines, cluster

    def test_filter_drops_ejected_until_sitout_elapses(self):
        monitor, machines, cluster = self._ejected()
        kept = monitor.filter_routable(machines)
        assert machines[0] not in kept and len(kept) == 2

    def test_sitout_elapsed_transitions_to_trial_lazily(self):
        monitor, machines, cluster = self._ejected()
        cluster.env.run(until=CONFIG.readmit_after_ns + 1.0)
        kept = monitor.filter_routable(machines)
        assert machines[0] in kept
        assert monitor.member(machines[0]).state == HealthState.TRIAL

    def test_trial_promotes_after_consecutive_healthy(self):
        monitor, machines, cluster = self._ejected()
        cluster.env.run(until=CONFIG.readmit_after_ns + 1.0)
        monitor.filter_routable(machines)
        # The ejected-era EWMA is still bad; feed fast completions so
        # the trial signals read healthy.
        for _ in range(CONFIG.trial_requests):
            monitor.observe(machines[0], 1.0, ok=True)
        assert monitor.member(machines[0]).state == HealthState.HEALTHY
        assert monitor.readmissions == 1

    def test_one_bad_signal_fails_the_trial(self):
        monitor, machines, cluster = self._ejected()
        cluster.env.run(until=CONFIG.readmit_after_ns + 1.0)
        monitor.filter_routable(machines)
        monitor.observe(machines[0], 1.0, ok=True)
        monitor.observe(machines[0], 50000.0, ok=True)  # relapse
        assert monitor.member(machines[0]).state == HealthState.EJECTED
        assert monitor.trials_failed == 1
        assert monitor.ejections == 2

    def test_all_ejected_filter_returns_unfiltered(self):
        monitor, machines, _ = self._ejected()
        for machine in machines:
            monitor.member(machine).state = HealthState.EJECTED
        assert monitor.filter_routable(machines) == machines


class TestProbes:
    def test_prober_ejects_wedged_machine_passives_never_see(self):
        config = HealthConfig(
            latency_threshold_ns=1e9,
            ewma_alpha=1.0,
            eject_after=3,
            probe_interval_ns=100.0,
            probe_pressure_threshold=10.0,
            probe_max=8,
        )
        monitor, machines, cluster = make_monitor(
            config=config, pressure=50.0
        )
        machines[1].pressure = machines[2].pressure = 0.0
        cluster.env.run()
        assert monitor.probes == 8
        assert monitor.member(machines[0]).state == HealthState.EJECTED

    def test_zero_interval_installs_no_prober(self):
        monitor, _, cluster = make_monitor()
        cluster.env.run()
        assert monitor.probes == 0

    def test_probe_sweeps_are_bounded(self):
        config = HealthConfig(probe_interval_ns=100.0, probe_max=5)
        monitor, _, cluster = make_monitor(config=config)
        cluster.env.run()  # a bare drain must terminate
        assert monitor.probes == 5


class TestStats:
    def test_counts_and_stats_track_states(self):
        monitor, machines, _ = make_monitor()
        for machine in machines:
            monitor.observe(machine, 1.0, ok=True)
        for _ in range(CONFIG.eject_after):
            monitor.observe(machines[0], 50000.0, ok=True)
        stats = monitor.stats()
        assert stats["ejections"] == 1
        assert stats["ejected"] == 1
        assert monitor.counts()[HealthState.HEALTHY] == 2
        assert set(stats["scores"]) == {0, 1, 2}


class TestClusterIntegration:
    HEALTH = HealthConfig(
        latency_threshold_ns=6e5,
        ewma_alpha=0.3,
        eject_after=4,
        readmit_after_ns=2e6,
        trial_requests=4,
    )

    def _run(self, health, faults=None, seed=0):
        config = ClusterConfig(
            policy="round-robin",
            machines=3,
            requests_per_service=120,
            rate_rps=30000.0,
            seed=seed,
            arrival_mode="poisson",
            warmup_fraction=0.0,
            health=health,
            faults=faults,
        )
        return run_cluster([SERVICES["StoreP"]], config)

    def test_limping_machine_gets_ejected(self):
        faults = FaultConfig(
            gray_limp_probability=0.5, gray_limp_factor=8.0
        )
        result = self._run(self.HEALTH, faults=faults)
        stats = result.health_stats
        assert stats is not None
        assert stats["ejections"] > 0

    def test_idle_health_plane_is_byte_inert(self):
        """With thresholds nothing crosses, installing the monitor must
        not move one sample relative to health=None (RNG-free)."""
        never = HealthConfig(latency_threshold_ns=1e12, error_threshold=1.0)
        with_plane = self._run(never)
        without = self._run(None)
        assert (
            with_plane.recorder.samples == without.recorder.samples
        )
        assert with_plane.elapsed_ns == without.elapsed_ns
        assert with_plane.health_stats["ejections"] == 0

"""Suite-wide runaway guard.

Every :class:`~repro.sim.Environment` a test creates is bounded in both
event count and wall-clock time, so an accidental infinite event loop
(a regression in the kernel, a fault injector that never drains, a
recovery retry cycle) fails fast with a readable
:class:`~repro.sim.SimulationError` instead of hanging CI.
"""

import pytest

from repro.sim import Environment

#: Far above any legitimate test run (the heaviest golden experiment
#: processes a few million events), far below "hung forever".
GUARD_MAX_EVENTS = 20_000_000
GUARD_MAX_WALL_S = 120.0


@pytest.fixture(autouse=True)
def _runaway_guard():
    saved = (Environment.default_max_events, Environment.default_max_wall_s)
    Environment.default_max_events = GUARD_MAX_EVENTS
    Environment.default_max_wall_s = GUARD_MAX_WALL_S
    try:
        yield
    finally:
        Environment.default_max_events, Environment.default_max_wall_s = saved

"""Tests for the automated trace compiler (Section IX future work)."""

import pytest

from repro.core import TraceRegistry
from repro.core.compiler import (
    CompileError,
    Convert,
    Fork,
    IfField,
    Offload,
    SendReceive,
    TraceCompiler,
)
from repro.core.encoding import fits
from repro.hw import AcceleratorKind

K = AcceleratorKind


def compile_program(program, prefix="svc"):
    return TraceCompiler(prefix).compile(program)


class TestLinearPrograms:
    def test_simple_chain(self):
        compiled = compile_program(
            [Offload("Ser"), Offload("Encr"), Offload("TCP")]
        )
        assert compiled.entry == "svc"
        assert len(compiled) == 1
        path = compiled.traces["svc"].resolve({})
        assert [k.value for k in path.kinds()] == ["Ser", "Encr", "TCP"]
        assert path.notified

    def test_conversion_attaches(self):
        compiled = compile_program(
            [Offload("Dser"), Convert("json", "string"), Offload("Cmp")]
        )
        path = compiled.traces["svc"].resolve({})
        assert path.steps[0].transforms_after == 1

    def test_empty_program_rejected(self):
        with pytest.raises(CompileError):
            compile_program([])

    def test_leading_conversion_rejected(self):
        with pytest.raises(CompileError):
            compile_program([Convert("json", "string"), Offload("Ser")])

    def test_unknown_item_rejected(self):
        with pytest.raises(CompileError):
            compile_program([Offload("Ser"), "not-an-item"])

    def test_bad_format_rejected(self):
        with pytest.raises(CompileError):
            compile_program([Offload("Ser"), Convert("json", "yaml")])


class TestConditionals:
    def test_plain_branch_stays_inline(self):
        compiled = compile_program(
            [
                Offload("TCP"),
                Offload("Dser"),
                IfField("compressed", then=(Offload("Dcmp"),)),
                Offload("LdB"),
            ]
        )
        assert len(compiled) == 1
        trace = compiled.traces["svc"]
        taken = trace.resolve({"compressed": True})
        assert K.DCMP in taken.kinds()
        skipped = trace.resolve({"compressed": False})
        assert K.DCMP not in skipped.kinds()

    def test_rare_arm_extracted_to_own_trace(self):
        """The Section IV-B optimization: rare (error) subsequences move
        into their own ATM-reached trace."""
        compiled = compile_program(
            [
                Offload("TCP"),
                Offload("Dser"),
                IfField(
                    "exception",
                    then=(Offload("Ser"), Offload("RPC"), Offload("Encr"),
                          Offload("TCP")),
                    rare="then",
                ),
                Offload("LdB"),
            ]
        )
        assert len(compiled) == 2
        entry = compiled.traces["svc"]
        # Common case: small trace, no error bytes.
        common = entry.resolve({"exception": False})
        assert [k.value for k in common.kinds()] == ["TCP", "Dser", "LdB"]
        # Exception: the chain continues in the extracted trace.
        error_path = entry.resolve({"exception": True})
        assert error_path.next_trace is not None
        rare = compiled.traces[error_path.next_trace]
        assert len(rare.resolve({}).kinds()) == 4

    def test_rare_orelse_extraction(self):
        compiled = compile_program(
            [
                Offload("TCP"),
                IfField(
                    "found",
                    then=(Offload("LdB"),),
                    orelse=(Offload("Ser"), Offload("TCP")),
                    rare="orelse",
                ),
            ]
        )
        missing = compiled.traces["svc"].resolve({"found": False})
        assert missing.next_trace is not None

    def test_empty_rare_arm_rejected(self):
        with pytest.raises(CompileError):
            compile_program(
                [Offload("TCP"), IfField("exception", then=(), rare="then")]
            )

    def test_bad_rare_value_rejected(self):
        with pytest.raises(CompileError):
            IfField("exception", then=(Offload("Ser"),), rare="sometimes")


class TestRoundTrips:
    def test_send_receive_splits_traces(self):
        compiled = compile_program(
            [
                Offload("Ser"),
                Offload("Encr"),
                SendReceive(
                    request=(Offload("TCP"),),
                    response=(Offload("TCP"), Offload("Decr"), Offload("LdB")),
                ),
            ]
        )
        assert len(compiled) == 2
        entry_path = compiled.traces["svc"].resolve({})
        assert entry_path.next_trace is not None
        response = compiled.traces[entry_path.next_trace]
        assert response.first_kind == K.TCP

    def test_round_trip_must_end_segment(self):
        with pytest.raises(CompileError):
            compile_program(
                [
                    Offload("Ser"),
                    SendReceive(request=(Offload("TCP"),),
                                response=(Offload("TCP"),)),
                    Offload("LdB"),  # nothing may follow the round trip
                ]
            )

    def test_nested_round_trips(self):
        """A response that itself performs another round trip."""
        compiled = compile_program(
            [
                Offload("Ser"),
                SendReceive(
                    request=(Offload("TCP"),),
                    response=(
                        Offload("TCP"),
                        Offload("Ser"),
                        SendReceive(
                            request=(Offload("TCP"),),
                            response=(Offload("TCP"), Offload("LdB")),
                        ),
                    ),
                ),
            ]
        )
        assert len(compiled) == 3


class TestForks:
    def test_fork_lowered_to_parallel(self):
        compiled = compile_program(
            [
                Offload("TCP"),
                Offload("Dser"),
                Fork(arms=((Offload("LdB"),), (Offload("Ser"), Offload("TCP")))),
            ]
        )
        path = compiled.traces["svc"].resolve({})
        assert len(path.steps[-1].fanout) == 2

    def test_fork_must_be_terminal(self):
        with pytest.raises(CompileError):
            compile_program(
                [
                    Offload("TCP"),
                    Fork(arms=((Offload("LdB"),), (Offload("Ser"),))),
                    Offload("Encr"),
                ]
            )


class TestBudgetAndRegistration:
    def test_long_programs_split_automatically(self):
        program = [Offload("Ser") for _ in range(40)]
        compiled = compile_program(program)
        assert len(compiled) >= 3
        for trace in compiled.traces.values():
            assert fits(trace)

    def test_register_into_registry(self):
        compiled = compile_program(
            [
                Offload("TCP"),
                IfField("exception", then=(Offload("Ser"), Offload("TCP")),
                        rare="then"),
                Offload("LdB"),
            ]
        )
        registry = TraceRegistry()
        compiled.register_into(registry)
        registry.validate_closed()
        assert compiled.entry in registry

    def test_compiled_traces_execute_in_simulation(self):
        from repro.core import standard_trace_set
        from repro.server import run_unloaded
        from repro.workloads import (
            AVERAGE_TAX_FRACTIONS,
            CpuSegment,
            ServiceSpec,
            TraceInvocation,
        )

        compiled = compile_program(
            [
                Offload("TCP"), Offload("Decr"), Offload("Dser"),
                IfField("compressed", then=(Offload("Dcmp"),)),
                Offload("LdB"),
            ],
            prefix="compiled_recv",
        )
        registry = TraceRegistry(standard_trace_set())
        compiled.register_into(registry)
        spec = ServiceSpec(
            name="Compiled",
            suite="test",
            total_time_ns=800_000.0,
            fractions=dict(AVERAGE_TAX_FRACTIONS),
            path=(
                TraceInvocation("compiled_recv", {"compressed": True}),
                CpuSegment(),
                TraceInvocation("T2"),
            ),
            rate_rps=1000.0,
        )
        result = run_unloaded("accelflow", spec, requests=5, registry=registry)
        assert result.completed == 5

"""Unit + property tests for the Data Transform Engine."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import DataFormat
from repro.core.dte import DataTransformEngine, TransformError

DTE = DataTransformEngine()

SAMPLE = {
    "name": "reader-01",
    "hits": 42,
    "ratio": 0.125,
    "compressed": True,
    "blob": b"\x00\x01payload\xff",
}


class TestStringFormat:
    def test_roundtrip(self):
        assert DTE.from_string(DTE.to_string(SAMPLE)) == SAMPLE

    def test_empty_document(self):
        assert DTE.from_string(DTE.to_string({})) == {}

    def test_deterministic_ordering(self):
        a = DTE.to_string({"b": 1, "a": 2})
        b = DTE.to_string({"a": 2, "b": 1})
        assert a == b

    def test_malformed_line_rejected(self):
        with pytest.raises(TransformError):
            DTE.from_string("no-separator-here")

    def test_unknown_prefix_rejected(self):
        with pytest.raises(TransformError):
            DTE.from_string("z:key=value")

    def test_key_with_equals_rejected(self):
        with pytest.raises(TransformError):
            DTE.to_string({"bad=key": 1})


class TestJsonFormat:
    def test_roundtrip(self):
        assert DTE.from_json(DTE.to_json(SAMPLE)) == SAMPLE

    def test_bytes_are_base64_tagged(self):
        text = DTE.to_json({"blob": b"abc"})
        assert "$b64$" in text

    def test_bad_json_rejected(self):
        with pytest.raises(TransformError):
            DTE.from_json("{not json")

    def test_nested_json_rejected(self):
        with pytest.raises(TransformError):
            DTE.from_json('{"nested": {"a": 1}}')


class TestBsonFormat:
    def test_roundtrip(self):
        assert DTE.from_bson(DTE.to_bson(SAMPLE)) == SAMPLE

    def test_framing_length(self):
        import struct

        data = DTE.to_bson({"k": "v"})
        (length,) = struct.unpack_from("<i", data, 0)
        assert length == len(data)
        assert data[-1:] == b"\x00"

    def test_truncated_rejected(self):
        with pytest.raises(TransformError):
            DTE.from_bson(b"\x01\x02")

    def test_corrupt_framing_rejected(self):
        data = bytearray(DTE.to_bson({"k": 1}))
        data[0] ^= 0xFF
        with pytest.raises(TransformError):
            DTE.from_bson(bytes(data))

    def test_nested_document_rejected(self):
        # Hand-craft a document with an embedded-document element (0x03).
        import struct

        body = b"\x03key\x00" + DTE.to_bson({})
        data = struct.pack("<i", len(body) + 5) + body + b"\x00"
        with pytest.raises(TransformError, match="nested"):
            DTE.from_bson(data)


class TestProtobufFormat:
    def test_roundtrip(self):
        assert DTE.from_protobuf(DTE.to_protobuf(SAMPLE)) == SAMPLE

    def test_varint_boundaries(self):
        doc = {"big": 2**40, "neg": -5}
        assert DTE.from_protobuf(DTE.to_protobuf(doc)) == doc

    def test_truncated_varint_rejected(self):
        with pytest.raises(TransformError):
            DTE.from_protobuf(b"\xff")


class TestValidation:
    def test_nested_rejected(self):
        with pytest.raises(TransformError, match="nested"):
            DTE.to_json({"inner": {"a": 1}})

    def test_custom_type_rejected(self):
        class Custom:
            pass

        with pytest.raises(TransformError, match="custom"):
            DTE.to_string({"x": Custom()})

    def test_non_dict_rejected(self):
        with pytest.raises(TransformError):
            DTE.encode(["not", "a", "dict"], DataFormat.JSON)

    def test_non_string_key_rejected(self):
        with pytest.raises(TransformError):
            DTE.to_bson({1: "x"})


class TestTransform:
    def test_json_to_string(self):
        text = DTE.to_json(SAMPLE)
        converted = DTE.transform(text, DataFormat.JSON, DataFormat.STRING)
        assert DTE.from_string(converted) == SAMPLE

    def test_string_to_bson(self):
        text = DTE.to_string(SAMPLE)
        converted = DTE.transform(text, DataFormat.STRING, DataFormat.BSON)
        assert DTE.from_bson(converted) == SAMPLE

    def test_identity_is_noop(self):
        text = DTE.to_json(SAMPLE)
        assert DTE.transform(text, DataFormat.JSON, DataFormat.JSON) is text

    def test_app_object_endpoints(self):
        wire = DTE.transform(SAMPLE, DataFormat.APP_OBJECT, DataFormat.PROTOBUF)
        back = DTE.transform(wire, DataFormat.PROTOBUF, DataFormat.APP_OBJECT)
        assert back == SAMPLE


_keys = st.text(
    alphabet=st.characters(min_codepoint=48, max_codepoint=122,
                           blacklist_characters="=\\"),
    min_size=1,
    max_size=12,
)
_values = st.one_of(
    st.text(
        alphabet=st.characters(min_codepoint=32, max_codepoint=126,
                               blacklist_characters="=\\"),
        max_size=40,
    ),
    st.integers(min_value=-(2**62), max_value=2**62),
    st.floats(allow_nan=False, allow_infinity=False, width=64),
    st.booleans(),
    st.binary(max_size=64),
)
_documents = st.dictionaries(_keys, _values, max_size=8)


class TestRoundTripProperties:
    @given(_documents)
    @settings(max_examples=150)
    def test_bson_roundtrip(self, document):
        assert DTE.from_bson(DTE.to_bson(document)) == document

    @given(_documents)
    @settings(max_examples=150)
    def test_protobuf_roundtrip(self, document):
        assert DTE.from_protobuf(DTE.to_protobuf(document)) == document

    @given(_documents)
    @settings(max_examples=150)
    def test_json_roundtrip(self, document):
        assert DTE.from_json(DTE.to_json(document)) == document

    @given(_documents)
    @settings(max_examples=100)
    def test_cross_format_chain(self, document):
        """app -> json -> string? No: json -> bson -> json -> app."""
        as_json = DTE.encode(document, DataFormat.JSON)
        as_bson = DTE.transform(as_json, DataFormat.JSON, DataFormat.BSON)
        back = DTE.transform(as_bson, DataFormat.BSON, DataFormat.JSON)
        assert DTE.decode(back, DataFormat.JSON) == document

"""Unit + property tests for the binary trace encoding."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    EncodingError,
    Trace,
    TraceNameTable,
    atm_link,
    branch,
    decode_trace,
    encode_trace,
    encoded_nibbles,
    fits,
    notify,
    seq,
    split_trace,
    standard_trace_set,
    trans,
)
from repro.core.nodes import AccelStep
from repro.hw import ACCEL_KINDS, AcceleratorKind

K = AcceleratorKind


class TestEncodeBasics:
    def test_simple_trace_is_two_bytes(self):
        trace = seq("Ser", "RPC", "Encr", "TCP", name="t2")
        data = encode_trace(trace)
        assert len(data) == 2  # four 4-bit accelerator IDs

    def test_max_size_is_eight_bytes(self):
        trace = Trace("long", [AccelStep(K.SER) for _ in range(16)])
        assert len(encode_trace(trace)) == 8

    def test_seventeen_accels_do_not_fit(self):
        trace = Trace("too-long", [AccelStep(K.SER) for _ in range(17)])
        assert not fits(trace)
        with pytest.raises(EncodingError):
            encode_trace(trace)

    def test_branch_encoding_size(self):
        trace = seq("TCP", branch("compressed", on_true=["Dcmp"]), "LdB", name="t")
        # TCP + (branch op, cond, len, Dcmp, len) + LdB = 7 nibbles.
        assert encoded_nibbles(trace) == 7

    def test_odd_nibble_count_padded(self):
        trace = seq("TCP", "Decr", "RPC", name="t")
        data = encode_trace(trace)
        assert len(data) == 2
        assert data[1] & 0x0F == 0x0F  # pad nibble


class TestRoundTrip:
    def roundtrip(self, trace):
        names = TraceNameTable()
        data = encode_trace(trace, names)
        return decode_trace(data, name=trace.name, names=names)

    def assert_same_paths(self, original, decoded):
        original_paths = {
            tuple(sorted(state.items())): repr(path)
            for state, path in original.all_paths()
        }
        decoded_paths = {
            tuple(sorted(state.items())): repr(path)
            for state, path in decoded.all_paths()
        }
        assert original_paths == decoded_paths

    def test_linear_roundtrip(self):
        trace = seq("Ser", "RPC", "Encr", "TCP", name="t2")
        self.assert_same_paths(trace, self.roundtrip(trace))

    def test_branch_roundtrip(self):
        trace = seq(
            "TCP",
            "Dser",
            branch("compressed", on_true=[trans("json", "string"), "Dcmp"]),
            "LdB",
            name="t1",
        )
        self.assert_same_paths(trace, self.roundtrip(trace))

    def test_atm_link_roundtrip(self):
        trace = seq("Ser", "Encr", "TCP", atm_link("T5"), name="t4")
        decoded = self.roundtrip(trace)
        assert decoded.resolve({}).next_trace == "T5"

    def test_notify_error_roundtrip(self):
        trace = seq("Ser", "TCP", notify(error=True), name="err")
        decoded = self.roundtrip(trace)
        assert decoded.resolve({}).error

    def test_all_standard_templates_roundtrip(self):
        for name, trace in standard_trace_set().items():
            self.assert_same_paths(trace, self.roundtrip(trace))

    def test_all_standard_templates_fit_in_eight_bytes(self):
        # The paper: "In our evaluation, we do not observe long traces
        # requiring splitting."
        for name, trace in standard_trace_set().items():
            assert fits(trace), f"{name} does not fit"


@st.composite
def linear_traces(draw):
    kinds = draw(st.lists(st.sampled_from(list(ACCEL_KINDS)), min_size=1, max_size=16))
    return Trace("prop", [AccelStep(k) for k in kinds])


@st.composite
def branchy_traces(draw):
    head = draw(st.sampled_from(list(ACCEL_KINDS)))
    nodes = [AccelStep(head)]
    n_branches = draw(st.integers(min_value=0, max_value=2))
    conditions = draw(
        st.lists(
            st.sampled_from(["compressed", "hit", "found", "exception"]),
            min_size=n_branches,
            max_size=n_branches,
            unique=True,
        )
    )
    for cond in conditions:
        true_kinds = draw(
            st.lists(st.sampled_from(list(ACCEL_KINDS)), min_size=0, max_size=2)
        )
        false_kinds = draw(
            st.lists(st.sampled_from(list(ACCEL_KINDS)), min_size=0, max_size=2)
        )
        nodes.append(
            branch(cond, [AccelStep(k) for k in true_kinds],
                   [AccelStep(k) for k in false_kinds])
        )
    nodes.append(AccelStep(draw(st.sampled_from(list(ACCEL_KINDS)))))
    return Trace("prop", nodes)


class TestEncodingProperties:
    @given(linear_traces())
    @settings(max_examples=100)
    def test_linear_roundtrip_preserves_kinds(self, trace):
        decoded = decode_trace(encode_trace(trace))
        assert decoded.resolve({}).kinds() == trace.resolve({}).kinds()

    @given(linear_traces())
    @settings(max_examples=100)
    def test_encoded_size_bounded(self, trace):
        assert len(encode_trace(trace)) <= 8

    @given(branchy_traces())
    @settings(max_examples=100)
    def test_branchy_roundtrip_preserves_all_paths(self, trace):
        if not fits(trace):
            return  # too large for a single hardware trace
        decoded = decode_trace(encode_trace(trace))
        for state, path in trace.all_paths():
            assert decoded.resolve(state).kinds() == path.kinds()

    @given(st.integers(min_value=17, max_value=64))
    @settings(max_examples=30)
    def test_split_covers_long_chains(self, length):
        trace = Trace("long", [AccelStep(K.SER) for _ in range(length)])
        subtraces = split_trace(trace)
        assert len(subtraces) >= 2
        total_steps = 0
        for i, sub in enumerate(subtraces):
            assert fits(sub)
            path = sub.resolve({})
            total_steps += len(path.steps)
            if i < len(subtraces) - 1:
                assert path.next_trace == subtraces[i + 1].name
            else:
                assert path.next_trace is None
        assert total_steps == length


class TestSplitting:
    def test_short_trace_untouched(self):
        trace = seq("Ser", "TCP", name="t")
        assert split_trace(trace) == [trace]

    def test_split_chain_names(self):
        trace = Trace("big", [AccelStep(K.TCP) for _ in range(20)])
        subs = split_trace(trace)
        assert subs[0].name == "big"
        assert subs[1].name == "big#1"

    def test_trace_name_table_roundtrip(self):
        table = TraceNameTable()
        tid = table.id_of("T5")
        assert table.name_of(tid) == "T5"
        assert table.id_of("T5") == tid  # stable
        assert len(table) == 1

    def test_unknown_id_rejected(self):
        with pytest.raises(EncodingError):
            TraceNameTable().name_of(42)

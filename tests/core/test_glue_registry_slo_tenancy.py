"""Tests for glue costs, the trace registry, SLO helpers and tenancy."""

import pytest

from repro.core import (
    DeadlineAssigner,
    GlueCostModel,
    SloTracker,
    TenantManager,
    TraceError,
    TraceRegistry,
    atm_link,
    seq,
    standard_trace_set,
)
from repro.core.trace import ResolvedStep
from repro.hw import AcceleratorKind

K = AcceleratorKind


class TestGlueCostModel:
    def test_plain_step_is_15_instructions(self):
        model = GlueCostModel()
        step = ResolvedStep(K.SER)
        assert model.instructions_for(step) == 15

    def test_branch_adds_seven(self):
        model = GlueCostModel()
        step = ResolvedStep(K.DSER)
        step.branches_after = 2
        assert model.instructions_for(step) == 15 + 14

    def test_transform_adds_twelve(self):
        model = GlueCostModel()
        step = ResolvedStep(K.DSER)
        step.transforms_after = 1
        assert model.instructions_for(step) == 27

    def test_end_of_trace_costs(self):
        model = GlueCostModel()
        atm_step = ResolvedStep(K.TCP)
        atm_step.atm_read_after = True
        assert model.instructions_for(atm_step) == 15 + 12
        notify_step = ResolvedStep(K.LDB)
        notify_step.notify_after = True
        assert model.instructions_for(notify_step) == 15 + 20

    def test_worst_case_about_fifty(self):
        model = GlueCostModel()
        step = ResolvedStep(K.DSER)
        step.branches_after = 1
        step.transforms_after = 1
        step.notify_after = True
        assert model.instructions_for(step) == 54  # "about 50" in the paper

    def test_average_accumulates(self):
        model = GlueCostModel()
        plain = ResolvedStep(K.SER)
        branchy = ResolvedStep(K.DSER)
        branchy.branches_after = 1
        model.record(plain)
        model.record(branchy)
        assert model.average_instructions() == pytest.approx((15 + 22) / 2)
        assert model.operations == 2
        assert model.branches_resolved == 1

    def test_dispatch_time_includes_dte_streaming(self):
        model = GlueCostModel()
        step = ResolvedStep(K.DSER)
        step.transforms_after = 1
        fast = model.dispatch_time_ns(step, payload_bytes=0)
        slow = model.dispatch_time_ns(step, payload_bytes=2048)
        assert slow > fast

    def test_stats_keys(self):
        model = GlueCostModel()
        model.record(ResolvedStep(K.SER))
        stats = model.stats()
        assert stats["operations"] == 1
        assert "average_instructions" in stats


class TestTraceRegistry:
    def test_register_and_get(self):
        registry = TraceRegistry()
        trace = seq("Ser", "TCP", name="mine")
        registry.register(trace)
        assert registry.get("mine") is trace
        assert "mine" in registry
        assert len(registry) == 1

    def test_duplicate_rejected(self):
        registry = TraceRegistry()
        registry.register(seq("Ser", name="x"))
        with pytest.raises(TraceError):
            registry.register(seq("TCP", name="x"))

    def test_unknown_lookup_raises(self):
        with pytest.raises(TraceError):
            TraceRegistry().get("nope")

    def test_standard_templates_preloaded(self):
        registry = TraceRegistry.with_standard_templates()
        assert "T1" in registry
        assert len(registry) == len(standard_trace_set())

    def test_validate_closed_catches_dangling_link(self):
        registry = TraceRegistry()
        registry.register(seq("Ser", "TCP", atm_link("ghost"), name="a"))
        with pytest.raises(TraceError):
            registry.validate_closed()

    def test_long_trace_auto_split(self):
        from repro.core.nodes import AccelStep
        from repro.core.trace import Trace

        registry = TraceRegistry()
        long_trace = Trace("huge", [AccelStep(K.SER) for _ in range(30)])
        registry.register(long_trace)
        assert "huge" in registry
        assert "huge#1" in registry
        registry.validate_closed()

    def test_name_table_covers_all(self):
        registry = TraceRegistry.with_standard_templates()
        table = registry.name_table()
        assert len(table) == len(registry)


class TestDeadlineAssigner:
    def test_deadlines_monotone_and_end_at_budget(self):
        trace = seq("Ser", "RPC", "Encr", "TCP", name="t")
        path = trace.resolve({})
        assigner = DeadlineAssigner(lambda kind: 100.0)
        deadlines = assigner.assign(path, start_ns=1000.0, budget_ns=400.0)
        assert deadlines == sorted(deadlines)
        assert deadlines[-1] == pytest.approx(1400.0)
        assert len(deadlines) == 4

    def test_weights_shift_deadlines(self):
        trace = seq("Ser", "Cmp", name="t")
        path = trace.resolve({})
        expected = {K.SER: 100.0, K.CMP: 300.0}
        assigner = DeadlineAssigner(lambda kind: expected[kind])
        deadlines = assigner.assign(path, start_ns=0.0, budget_ns=400.0)
        assert deadlines[0] == pytest.approx(100.0)
        assert deadlines[1] == pytest.approx(400.0)

    def test_bad_budget_rejected(self):
        trace = seq("Ser", name="t")
        assigner = DeadlineAssigner(lambda kind: 1.0)
        with pytest.raises(ValueError):
            assigner.assign(trace.resolve({}), 0.0, 0.0)


class TestSloTracker:
    def test_counts_violations(self):
        tracker = SloTracker(slo_ns=100.0)
        assert tracker.record(50.0)
        assert not tracker.record(150.0)
        assert tracker.violation_rate == 0.5

    def test_no_slo_never_violates(self):
        tracker = SloTracker()
        tracker.record(1e12)
        assert tracker.violation_rate == 0.0

    def test_empty_rate_zero(self):
        assert SloTracker(100.0).violation_rate == 0.0


class TestTenantManager:
    def test_limit_positive(self):
        with pytest.raises(ValueError):
            TenantManager(0)

    def test_limit_enforced(self):
        manager = TenantManager(limit=2)
        assert manager.try_start(1)
        assert manager.try_start(1)
        assert not manager.try_start(1)
        assert manager.throttled == 1

    def test_end_releases_slot(self):
        manager = TenantManager(limit=1)
        assert manager.try_start(5)
        manager.end(5)
        assert manager.try_start(5)

    def test_tenants_independent(self):
        manager = TenantManager(limit=1)
        assert manager.try_start(1)
        assert manager.try_start(2)
        assert manager.active_tenants == 2

    def test_end_without_start_rejected(self):
        with pytest.raises(ValueError):
            TenantManager(1).end(9)

    def test_stats(self):
        manager = TenantManager(limit=3)
        manager.try_start(1)
        stats = manager.stats()
        assert stats["started"] == 1
        assert stats["limit"] == 3

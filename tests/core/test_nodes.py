"""Unit tests for trace node types and branch conditions."""

import pytest

from repro.core import (
    CONDITIONS,
    AccelStep,
    AtmLinkNode,
    BranchCondition,
    BranchNode,
    DataFormat,
    NotifyNode,
    ParallelNode,
    TraceValidationError,
    TransformNode,
)
from repro.hw import AcceleratorKind


class TestBranchCondition:
    def test_single_field_truthy(self):
        cond = BranchCondition("compressed", ["compressed"])
        assert cond.evaluate({"compressed": True})
        assert not cond.evaluate({"compressed": False})

    def test_missing_field_reads_false(self):
        cond = BranchCondition("hit", ["hit"])
        assert not cond.evaluate({})

    def test_and_of_fields(self):
        cond = BranchCondition("both", ["f1", "f2"], op="and")
        assert cond.evaluate({"f1": True, "f2": True})
        assert not cond.evaluate({"f1": True, "f2": False})

    def test_or_of_fields(self):
        cond = BranchCondition("either", ["f1", "f2"], op="or")
        assert cond.evaluate({"f1": False, "f2": True})
        assert not cond.evaluate({})

    def test_rejects_empty_fields(self):
        with pytest.raises(TraceValidationError):
            BranchCondition("bad", [])

    def test_rejects_unknown_op(self):
        with pytest.raises(TraceValidationError):
            BranchCondition("bad", ["f"], op="xor")

    def test_equality_and_hash(self):
        a = BranchCondition("x", ["f"], op="and")
        b = BranchCondition("x", ["f"], op="and")
        assert a == b
        assert hash(a) == hash(b)

    def test_paper_conditions_registered(self):
        assert set(CONDITIONS) == {
            "compressed",
            "hit",
            "found",
            "exception",
            "c_compressed",
        }


class TestAccelStep:
    def test_requires_kind(self):
        with pytest.raises(TraceValidationError):
            AccelStep("TCP")

    def test_equality(self):
        assert AccelStep(AcceleratorKind.TCP) == AccelStep(AcceleratorKind.TCP)
        assert AccelStep(AcceleratorKind.TCP) != AccelStep(AcceleratorKind.SER)


class TestBranchNode:
    def test_resolves_condition_by_name(self):
        node = BranchNode("compressed", on_true=[], on_false=[])
        assert node.condition is CONDITIONS["compressed"]

    def test_unknown_condition_name_rejected(self):
        with pytest.raises(TraceValidationError):
            BranchNode("no-such-condition", on_true=[], on_false=[])

    def test_arm_selection(self):
        t = [AccelStep(AcceleratorKind.CMP)]
        f = [AccelStep(AcceleratorKind.SER)]
        node = BranchNode("compressed", t, f)
        assert node.arm(True) == t
        assert node.arm(False) == f


class TestTransformNode:
    def test_supported_conversion(self):
        node = TransformNode(DataFormat.JSON, DataFormat.STRING)
        assert node.src == DataFormat.JSON

    def test_identity_rejected(self):
        with pytest.raises(TraceValidationError):
            TransformNode(DataFormat.JSON, DataFormat.JSON)

    def test_unsupported_conversion_rejected(self):
        # The simplified DTE cannot go json -> protobuf.
        with pytest.raises(TraceValidationError):
            TransformNode(DataFormat.JSON, DataFormat.PROTOBUF)

    def test_equality(self):
        a = TransformNode(DataFormat.JSON, DataFormat.STRING)
        b = TransformNode(DataFormat.JSON, DataFormat.STRING)
        assert a == b


class TestParallelNode:
    def test_needs_two_arms(self):
        with pytest.raises(TraceValidationError):
            ParallelNode([[AccelStep(AcceleratorKind.LDB)]])

    def test_holds_arms(self):
        node = ParallelNode(
            [[AccelStep(AcceleratorKind.LDB)], [AccelStep(AcceleratorKind.SER)]]
        )
        assert len(node.arms) == 2


class TestTailNodes:
    def test_atm_link_needs_name(self):
        with pytest.raises(TraceValidationError):
            AtmLinkNode("")
        assert AtmLinkNode("T5").next_trace == "T5"

    def test_notify_error_flag(self):
        assert not NotifyNode().error
        assert NotifyNode(error=True).error

"""Tests for trace rendering (ASCII + Graphviz dot)."""


from repro.core import standard_trace_set
from repro.core.render import render_ascii, render_dot
from repro.core.templates import (
    t1_receive_function_request,
    t4_send_db_cache_read,
    t6_receive_db_read_response,
)


class TestAsciiRendering:
    def test_linear_trace(self):
        from repro.core import seq

        text = render_ascii(seq("Ser", "RPC", "Encr", "TCP", name="t2"))
        assert "trace t2:" in text
        assert "[Ser] -> [RPC] -> [Encr] -> [TCP]" in text
        assert "notify CPU" in text

    def test_t1_shows_branch_and_transform(self):
        text = render_ascii(t1_receive_function_request())
        assert "? compressed" in text
        assert "{json->string}" in text
        assert "[Dcmp]" in text
        assert "no : (continue)" in text

    def test_t4_shows_atm_link(self):
        text = render_ascii(t4_send_db_cache_read())
        assert "-> ATM: T5 *" in text

    def test_t6_shows_parallel_fork(self):
        text = render_ascii(t6_receive_db_read_response())
        assert "parallel:" in text
        assert "arm 1:" in text and "arm 2:" in text

    def test_all_templates_render(self):
        for trace in standard_trace_set().values():
            text = render_ascii(trace)
            assert text.startswith(f"trace {trace.name}:")
            assert len(text.splitlines()) >= 2


class TestDotRendering:
    def test_valid_digraph_structure(self):
        dot = render_dot(t1_receive_function_request())
        assert dot.startswith('digraph "T1" {')
        assert dot.rstrip().endswith("}")
        assert "rankdir=LR" in dot

    def test_branch_rendered_as_diamond(self):
        dot = render_dot(t1_receive_function_request())
        assert "shape=diamond" in dot
        assert "compressed?" in dot

    def test_every_accelerator_appears(self):
        dot = render_dot(t1_receive_function_request())
        for name in ("TCP", "Decr", "RPC", "Dser", "Dcmp", "LdB"):
            assert f'label="{name}"' in dot

    def test_edges_reference_defined_nodes(self):
        import re

        dot = render_dot(t6_receive_db_read_response())
        defined = set(re.findall(r"^\s*(n\d+) \[", dot, re.MULTILINE))
        for src, dst in re.findall(r"(n\d+) -> (n\d+);", dot):
            assert src in defined and dst in defined

    def test_all_templates_render_dot(self):
        for trace in standard_trace_set().values():
            dot = render_dot(trace)
            assert "digraph" in dot

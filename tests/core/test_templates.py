"""Tests for the paper's trace catalogue T1-T12 (Table II)."""


from repro.core import T_ERR, TraceRegistry, standard_trace_set
from repro.core.templates import (
    t1_receive_function_request,
    t5_receive_db_cache_read_response,
    t6_receive_db_read_response,
    t7_receive_db_write_response,
    t8_send_db_write,
    t9_send_rpc_request,
    t10_receive_rpc_response,
)
from repro.hw import AcceleratorKind

K = AcceleratorKind


class TestT1:
    def test_uncompressed_path(self):
        path = t1_receive_function_request().resolve({"compressed": False})
        assert path.kinds() == [K.TCP, K.DECR, K.RPC, K.DSER, K.LDB]
        assert path.notified

    def test_compressed_path_adds_dcmp_and_transform(self):
        path = t1_receive_function_request().resolve({"compressed": True})
        assert path.kinds() == [K.TCP, K.DECR, K.RPC, K.DSER, K.DCMP, K.LDB]
        assert path.steps[3].transforms_after == 1


class TestSendTraces:
    def test_t2_figure_2a_sequence(self):
        trace = standard_trace_set()["T2"]
        assert trace.resolve({}).kinds() == [K.SER, K.RPC, K.ENCR, K.TCP]

    def test_t3_compresses_first_without_branch(self):
        trace = standard_trace_set()["T3"]
        path = trace.resolve({})
        assert path.kinds()[0] == K.CMP
        assert not trace.has_branches

    def test_t4_links_to_t5(self):
        trace = standard_trace_set()["T4"]
        path = trace.resolve({})
        assert path.kinds() == [K.SER, K.ENCR, K.TCP]
        assert path.next_trace == "T5"


class TestT5:
    def test_hit_path_ends_at_core(self):
        path = t5_receive_db_cache_read_response().resolve(
            {"compressed": False, "hit": True}
        )
        assert path.kinds() == [K.TCP, K.DECR, K.DSER, K.LDB]
        assert path.notified

    def test_miss_path_reads_db(self):
        path = t5_receive_db_cache_read_response().resolve(
            {"compressed": False, "hit": False}
        )
        assert path.kinds() == [K.TCP, K.DECR, K.DSER, K.SER, K.ENCR, K.TCP]
        assert path.next_trace == "T6"

    def test_compressed_hit_includes_dcmp(self):
        path = t5_receive_db_cache_read_response().resolve(
            {"compressed": True, "hit": True}
        )
        assert K.DCMP in path.kinds()


class TestT6:
    def test_not_found_reports_error_via_atm(self):
        path = t6_receive_db_read_response().resolve({"found": False})
        assert path.next_trace == T_ERR
        assert not path.notified

    def test_found_forks_cpu_and_writeback(self):
        path = t6_receive_db_read_response().resolve(
            {"found": True, "compressed": False, "c_compressed": False}
        )
        fork = path.steps[-1]
        assert len(fork.fanout) == 2
        critical = [arm for arm in fork.fanout if arm.notified]
        background = [arm for arm in fork.fanout if not arm.notified]
        assert critical[0].kinds() == [K.LDB]
        assert background[0].next_trace == "T7"

    def test_c_compressed_recompresses_for_cache(self):
        path = t6_receive_db_read_response().resolve(
            {"found": True, "compressed": True, "c_compressed": True}
        )
        background = [arm for arm in path.steps[-1].fanout if not arm.notified][0]
        assert background.kinds()[0] == K.CMP


class TestT7AndErrors:
    def test_exception_goes_to_error_trace(self):
        path = t7_receive_db_write_response().resolve({"exception": True})
        assert path.next_trace == T_ERR

    def test_normal_path_notifies(self):
        path = t7_receive_db_write_response().resolve({"exception": False})
        assert path.kinds() == [K.TCP, K.DECR, K.DSER, K.LDB]
        assert path.notified

    def test_error_trace_is_four_accelerators(self):
        err = standard_trace_set()[T_ERR]
        path = err.resolve({})
        assert len(path.kinds()) == 4
        assert path.error


class TestOptionalCompression:
    def test_t8_with_and_without_cmp(self):
        plain = t8_send_db_write(with_cmp=False).resolve({})
        compressed = t8_send_db_write(with_cmp=True).resolve({})
        assert K.CMP not in plain.kinds()
        assert compressed.kinds()[0] == K.CMP
        assert plain.next_trace == compressed.next_trace == "T7"

    def test_t9_links_to_t10(self):
        path = t9_send_rpc_request().resolve({})
        assert path.kinds() == [K.SER, K.RPC, K.ENCR, K.TCP]
        assert path.next_trace == "T10"

    def test_t10_exception_and_compression(self):
        ok = t10_receive_rpc_response().resolve(
            {"exception": False, "compressed": True}
        )
        assert K.DCMP in ok.kinds()
        bad = t10_receive_rpc_response().resolve({"exception": True})
        assert bad.next_trace == T_ERR


class TestCatalogue:
    def test_all_names_present(self):
        traces = standard_trace_set()
        for name in ["T1", "T2", "T3", "T4", "T5", "T6", "T7", "T8", "T9",
                     "T10", "T11", "T12", T_ERR]:
            assert name in traces

    def test_registry_is_closed(self):
        registry = TraceRegistry.with_standard_templates()
        registry.validate_closed()  # no dangling ATM links

    def test_branch_statistics_match_paper_narrative(self):
        """Most receive-side traces have at least one conditional."""
        traces = standard_trace_set()
        with_branches = [t for t in traces.values() if t.has_branches]
        assert len(with_branches) >= 6

    def test_t11_t12_http_pair(self):
        traces = standard_trace_set()
        assert traces["T11"].resolve({}).next_trace == "T12"
        t12 = traces["T12"].resolve({"compressed": False})
        assert K.RPC not in t12.kinds()  # HTTP has no RPC stage

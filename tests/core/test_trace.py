"""Unit tests for trace construction and resolution."""

import pytest

from repro.core import (
    Trace,
    TraceValidationError,
    atm_link,
    branch,
    notify,
    parallel,
    seq,
    trans,
)
from repro.hw import AcceleratorKind

K = AcceleratorKind


class TestConstruction:
    def test_empty_trace_rejected(self):
        with pytest.raises(TraceValidationError):
            Trace("empty", [])

    def test_must_start_with_accelerator(self):
        with pytest.raises(TraceValidationError):
            seq(branch("compressed", ["Dcmp"]), "LdB", name="bad")

    def test_notify_must_be_last(self):
        with pytest.raises(TraceValidationError):
            seq("TCP", notify(), "LdB", name="bad")

    def test_atm_link_must_be_last(self):
        with pytest.raises(TraceValidationError):
            seq("TCP", atm_link("T5"), "LdB", name="bad")

    def test_parallel_must_be_terminal(self):
        with pytest.raises(TraceValidationError):
            seq("TCP", parallel(["LdB"], ["Ser"]), "Encr", name="bad")

    def test_parallel_single_critical_arm_enforced(self):
        with pytest.raises(TraceValidationError):
            seq(
                "TCP",
                parallel(["LdB", notify()], ["Ser", notify()]),
                name="bad",
            )

    def test_empty_parallel_arm_rejected(self):
        with pytest.raises(TraceValidationError):
            seq("TCP", parallel([], ["LdB"]), name="bad")

    def test_first_kind(self):
        trace = seq("Ser", "Encr", "TCP", name="t")
        assert trace.first_kind == K.SER


class TestLinearResolution:
    def test_simple_chain(self):
        trace = seq("Ser", "RPC", "Encr", "TCP", name="t2")
        path = trace.resolve({})
        assert path.kinds() == [K.SER, K.RPC, K.ENCR, K.TCP]
        assert path.notified
        assert path.next_trace is None

    def test_implicit_notify_on_last_step(self):
        trace = seq("Ser", "TCP", name="t")
        path = trace.resolve({})
        assert path.steps[-1].notify_after
        assert not path.steps[0].notify_after

    def test_atm_tail_suppresses_notify(self):
        trace = seq("Ser", "Encr", "TCP", atm_link("T5"), name="t4")
        path = trace.resolve({})
        assert not path.notified
        assert path.next_trace == "T5"
        assert path.steps[-1].atm_read_after

    def test_total_accelerators(self):
        trace = seq("Ser", "Encr", "TCP", name="t")
        assert trace.resolve({}).total_accelerators() == 3


class TestBranchResolution:
    def make_t1_like(self):
        return seq(
            "TCP",
            "Decr",
            "RPC",
            "Dser",
            branch(
                "compressed",
                on_true=[trans("json", "string"), "Dcmp"],
                on_false=[],
            ),
            "LdB",
            name="t1",
        )

    def test_branch_taken_includes_dcmp(self):
        path = self.make_t1_like().resolve({"compressed": True})
        assert path.kinds() == [K.TCP, K.DECR, K.RPC, K.DSER, K.DCMP, K.LDB]

    def test_branch_not_taken_skips_dcmp(self):
        path = self.make_t1_like().resolve({"compressed": False})
        assert path.kinds() == [K.TCP, K.DECR, K.RPC, K.DSER, K.LDB]

    def test_branch_charged_to_previous_accelerator(self):
        path = self.make_t1_like().resolve({"compressed": True})
        dser = path.steps[3]
        assert dser.kind == K.DSER
        assert dser.branches_after == 1
        assert dser.transforms_after == 1  # json -> string before Dcmp

    def test_transform_skipped_when_branch_not_taken(self):
        path = self.make_t1_like().resolve({"compressed": False})
        dser = path.steps[3]
        assert dser.transforms_after == 0

    def test_divergent_arms(self):
        trace = seq(
            "TCP",
            "Dser",
            branch(
                "hit",
                on_true=["LdB", notify()],
                on_false=["Ser", "Encr", "TCP", atm_link("next")],
            ),
            name="t5-like",
        )
        hit = trace.resolve({"hit": True})
        assert hit.kinds() == [K.TCP, K.DSER, K.LDB]
        assert hit.notified and hit.next_trace is None
        miss = trace.resolve({"hit": False})
        assert miss.kinds() == [K.TCP, K.DSER, K.SER, K.ENCR, K.TCP]
        assert not miss.notified and miss.next_trace == "next"

    def test_nested_conditions_both_counted(self):
        trace = seq(
            "TCP",
            "Dser",
            branch("compressed", on_true=["Dcmp"], on_false=[]),
            branch("hit", on_true=["LdB", notify()], on_false=["Ser"]),
            name="double",
        )
        path = trace.resolve({"compressed": True, "hit": True})
        dser = path.steps[1]
        assert dser.branches_after == 1  # compressed resolved at Dser
        dcmp = path.steps[2]
        assert dcmp.branches_after == 1  # hit resolved at Dcmp

    def test_branch_with_no_preceding_accel_in_arm_ok(self):
        # Arm-local leading transform attaches to the accel before the branch.
        trace = seq(
            "Dser",
            branch("compressed", on_true=[trans("json", "string"), "Dcmp"]),
            name="t",
        )
        path = trace.resolve({"compressed": True})
        assert path.steps[0].transforms_after == 1


class TestParallelResolution:
    def make_t6_like(self):
        return seq(
            "TCP",
            "Dser",
            parallel(
                ["LdB", notify()],
                [
                    branch("c_compressed", on_true=["Cmp"], on_false=[]),
                    "Ser",
                    "TCP",
                    atm_link("T7"),
                ],
            ),
            name="t6-like",
        )

    def test_fanout_recorded_on_fork_origin(self):
        path = self.make_t6_like().resolve({})
        dser = path.steps[-1]
        assert dser.kind == K.DSER
        assert len(dser.fanout) == 2

    def test_critical_arm_notifies(self):
        path = self.make_t6_like().resolve({})
        arms = path.steps[-1].fanout
        assert arms[0].notified
        assert arms[0].kinds() == [K.LDB]

    def test_background_arm_links_to_t7(self):
        path = self.make_t6_like().resolve({"c_compressed": True})
        background = path.steps[-1].fanout[1]
        assert background.kinds() == [K.CMP, K.SER, K.TCP]
        assert background.next_trace == "T7"
        assert not background.notified

    def test_leading_branch_in_arm_charged_to_fork_origin(self):
        path = self.make_t6_like().resolve({})
        dser = path.steps[-1]
        assert dser.branches_after == 1  # c_compressed, resolved at Dser

    def test_total_accelerators_includes_fanout(self):
        path = self.make_t6_like().resolve({"c_compressed": True})
        # Main: TCP, Dser. Arms: LdB + (Cmp, Ser, TCP).
        assert path.total_accelerators() == 6

    def test_path_notified_via_critical_arm(self):
        assert self.make_t6_like().resolve({}).notified


class TestStaticAnalysis:
    def test_conditions_collected_recursively(self):
        trace = seq(
            "TCP",
            "Dser",
            branch("found", on_true=[], on_false=[atm_link("err")]),
            branch("compressed", on_true=["Dcmp"], on_false=[]),
            parallel(
                ["LdB", notify()],
                [branch("c_compressed", on_true=["Cmp"], on_false=[]), "Ser"],
            ),
            name="t",
        )
        assert trace.conditions() == {"found", "compressed", "c_compressed"}

    def test_has_branches(self):
        assert not seq("Ser", "TCP", name="t").has_branches
        assert seq("Ser", branch("hit", ["LdB"]), name="t").has_branches

    def test_all_paths_enumerates_combinations(self):
        trace = seq(
            "TCP",
            branch("compressed", on_true=["Dcmp"], on_false=[]),
            branch("hit", on_true=["LdB"], on_false=["Ser"]),
            name="t",
        )
        paths = trace.all_paths()
        assert len(paths) == 4
        kind_seqs = {tuple(k.value for k in p.kinds()) for _, p in paths}
        assert ("TCP", "Dcmp", "LdB") in kind_seqs
        assert ("TCP", "Ser") in kind_seqs

    def test_accelerator_pairs(self):
        trace = seq(
            "TCP",
            branch("compressed", on_true=["Dcmp"], on_false=[]),
            "LdB",
            name="t",
        )
        pairs = trace.accelerator_pairs()
        assert (K.TCP, K.DCMP) in pairs
        assert (K.DCMP, K.LDB) in pairs
        assert (K.TCP, K.LDB) in pairs  # not-compressed path

    def test_linked_traces(self):
        trace = seq(
            "TCP",
            branch("hit", on_true=["LdB", notify()], on_false=["Ser", atm_link("T6")]),
            name="t",
        )
        assert trace.linked_traces() == {"T6"}

    def test_max_accelerators(self):
        trace = seq(
            "TCP",
            branch("compressed", on_true=["Dcmp"], on_false=[]),
            "LdB",
            name="t",
        )
        assert trace.max_accelerators() == 3

"""Shared fixtures for the experiment-suite tests.

``--update-golden`` regenerates the golden snapshot fixtures instead of
diffing against them::

    PYTHONPATH=src python -m pytest tests/experiments/test_golden.py \
        --update-golden
"""

import pytest

from repro.experiments.cache import DEFAULT_CACHE_DIR, ResultCache
from repro.experiments.parallel import ShardExecutor


def pytest_addoption(parser):
    parser.addoption(
        "--update-golden",
        action="store_true",
        default=False,
        help="rewrite tests/experiments/golden/*.txt from the current code",
    )


@pytest.fixture(scope="session")
def update_golden(request):
    return request.config.getoption("--update-golden")


@pytest.fixture(scope="session")
def golden_executor():
    """One executor for the whole golden suite.

    It reads/writes the repo-level shard cache, so a pytest run on
    unchanged code replays cached shards instead of re-simulating
    (the cache key embeds a fingerprint of the ``repro`` sources, so
    any code edit forces recomputation).
    """
    with ShardExecutor(jobs=1, cache=ResultCache(DEFAULT_CACHE_DIR)) as executor:
        yield executor

"""The code fingerprint must cover every module that shapes results.

Each growth PR adds planes (placement, health, fluid, gray faults,
chaos campaigns, serving façade...); if the cache key's fingerprint
missed one, editing it would serve stale shard payloads. The
fingerprint hashes *every* ``.py`` under the package by construction —
these tests pin that: the manifest names the newer planes explicitly,
``__pycache__`` stays pruned, and touching any fingerprinted module
changes the key (and therefore misses the cache).
"""

import os
from types import SimpleNamespace

from repro.experiments import cache as cache_mod
from repro.experiments.cache import (
    ResultCache,
    code_fingerprint,
    fingerprint_manifest,
)

#: Modules added by growth PRs since the fingerprint was introduced —
#: the ones a hand-maintained manifest would plausibly have missed.
GROWTH_PLANES = [
    os.path.join("hw", "placement.py"),
    os.path.join("cluster", "health.py"),
    os.path.join("cluster", "fluid.py"),
    os.path.join("faults", "gray.py"),
    os.path.join("faults", "campaign.py"),
    os.path.join("serve", "facade.py"),
]


def _scratch_tree(tmp_path):
    for rel in GROWTH_PLANES + [os.path.join("sim", "core.py")]:
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text("x = 1\n")
    return str(tmp_path)


def test_manifest_covers_every_growth_plane():
    manifest = set(fingerprint_manifest())
    for rel in GROWTH_PLANES:
        assert rel in manifest, f"fingerprint does not cover {rel}"


def test_manifest_prunes_pycache(tmp_path):
    # Regression: sorted(os.walk(...)) used to materialize the walk
    # before the prune assignment, descending into __pycache__ anyway.
    (tmp_path / "pkg").mkdir()
    (tmp_path / "pkg" / "mod.py").write_text("x = 1\n")
    stale = tmp_path / "pkg" / "__pycache__"
    stale.mkdir()
    (stale / "leftover.py").write_text("x = 2\n")
    manifest = fingerprint_manifest(root=str(tmp_path))
    assert manifest == [os.path.join("pkg", "mod.py")]


def test_touching_each_plane_changes_the_fingerprint(tmp_path):
    root = _scratch_tree(tmp_path)
    cache_mod._FINGERPRINT_CACHE.clear()
    previous = code_fingerprint(root=root)
    for rel in GROWTH_PLANES:
        (tmp_path / rel).write_text("x = 2  # touched\n")
        cache_mod._FINGERPRINT_CACHE.clear()
        current = code_fingerprint(root=root)
        assert current != previous, f"touching {rel} did not change the key"
        previous = current


def test_cache_misses_after_any_fingerprinted_module_changes(
    tmp_path, monkeypatch
):
    root = _scratch_tree(tmp_path / "tree")
    monkeypatch.setattr(
        cache_mod, "code_fingerprint", lambda: code_fingerprint(root=root)
    )
    shard = SimpleNamespace(key="k", params={"a": 1}, seed=3)
    store = ResultCache(root=str(tmp_path / "store"))
    store.put("exp", "smoke", shard, {"p99": 42.0})
    assert store.get("exp", "smoke", shard) == ({"p99": 42.0},)
    for rel in GROWTH_PLANES:
        (tmp_path / "tree" / rel).write_text(f"x = 'edit-{rel}'\n")
        cache_mod._FINGERPRINT_CACHE.clear()
        assert store.get("exp", "smoke", shard) is None, (
            f"stale cache hit after editing {rel}"
        )
        store.put("exp", "smoke", shard, {"p99": 42.0})
        assert store.get("exp", "smoke", shard) is not None

"""The ``accelflow-repro`` command line: flags, exit codes, caching."""

import re

import pytest

from repro.experiments.cache import DEFAULT_CACHE_DIR
from repro.experiments.runner import build_parser, main


class TestFlagParsing:
    def test_defaults(self):
        args = build_parser().parse_args(["fig11"])
        assert args.scale == "quick"
        assert args.seed == 0
        assert args.jobs is None  # resolved to cpu count at runtime
        assert not args.no_cache
        assert not args.refresh
        assert args.cache_dir == DEFAULT_CACHE_DIR

    def test_jobs_and_cache_flags(self):
        args = build_parser().parse_args(
            ["all", "--jobs", "4", "--no-cache", "--refresh",
             "--cache-dir", "/tmp/elsewhere", "--quiet"]
        )
        assert args.jobs == 4
        assert args.no_cache
        assert args.refresh
        assert args.cache_dir == "/tmp/elsewhere"
        assert args.quiet

    def test_bad_scale_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig11", "--scale", "galactic"])


class TestExitCodes:
    def test_unknown_experiment_is_2(self, capsys):
        assert main(["warp-figure", "--no-cache"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_list_is_0(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out.split()
        assert "fig11" in out and "table4" in out and "char-energy" in out

    def test_bad_scale_exits_nonzero(self):
        with pytest.raises(SystemExit):
            main(["table4", "--scale", "galactic"])


def _cache_counts(stdout):
    match = re.search(
        r"\[cache hits=(\d+) misses=(\d+) writes=(\d+) errors=(\d+)", stdout
    )
    assert match, f"no cache summary in: {stdout!r}"
    return tuple(int(group) for group in match.groups())


class TestCachedRuns:
    def test_second_run_is_served_from_cache(self, tmp_path, capsys):
        argv = ["fig1", "--scale", "smoke", "--quiet",
                "--cache-dir", str(tmp_path)]
        assert main(argv) == 0
        hits, misses, writes, errors = _cache_counts(capsys.readouterr().out)
        assert hits == 0 and misses == writes > 0 and errors == 0

        assert main(argv) == 0
        second = capsys.readouterr().out
        hits, misses, writes, errors = _cache_counts(second)
        assert hits > 0 and misses == writes == errors == 0
        assert "Fig 1" in second  # the table itself still prints

    def test_cached_table_is_identical(self, tmp_path, capsys):
        argv = ["table2", "--scale", "smoke", "--quiet", "--jobs", "1",
                "--cache-dir", str(tmp_path)]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert main(argv) == 0
        second = capsys.readouterr().out

        def table_only(out):
            return "\n".join(
                line for line in out.splitlines()
                if not line.startswith("[") and "completed in" not in line
            )

        assert table_only(first) == table_only(second)

    def test_no_cache_suppresses_summary(self, capsys):
        assert main(["table4", "--scale", "smoke", "--quiet",
                     "--no-cache"]) == 0
        assert "[cache " not in capsys.readouterr().out

    def test_refresh_recomputes(self, tmp_path, capsys):
        argv = ["table4", "--scale", "smoke", "--quiet",
                "--cache-dir", str(tmp_path)]
        assert main(argv) == 0
        capsys.readouterr()
        assert main(argv + ["--refresh"]) == 0
        hits, misses, writes, _ = _cache_counts(capsys.readouterr().out)
        assert hits == 0 and misses == writes > 0

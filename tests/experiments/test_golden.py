"""Golden-output regression suite: every experiment's rendered table.

Each experiment runs at smoke scale with seed 0 and its ``"table"``
string is diffed against ``tests/experiments/golden/<id>.txt``. The
fixtures lock the full number surface of the reproduction: any change
to the simulator, the workload models or the seed derivation shows up
as a readable table diff instead of a silent drift.

After an *intentional* change, refresh with::

    PYTHONPATH=src python -m pytest tests/experiments/test_golden.py \
        --update-golden

and commit the fixture diff alongside the code.
"""

import difflib
import pathlib

import pytest

from repro.experiments import EXPERIMENTS

GOLDEN_DIR = pathlib.Path(__file__).parent / "golden"
SCALE = "smoke"
SEED = 0


def normalize(text: str) -> str:
    """Trailing whitespace never carries meaning in the tables."""
    return "\n".join(line.rstrip() for line in text.rstrip().splitlines())


def golden_path(name: str) -> pathlib.Path:
    return GOLDEN_DIR / f"{name}.txt"


def test_fixture_set_matches_registry():
    """No missing and no stale fixtures."""
    fixtures = {path.stem for path in GOLDEN_DIR.glob("*.txt")}
    assert fixtures == set(EXPERIMENTS)


@pytest.mark.parametrize("name", sorted(EXPERIMENTS))
def test_golden(name, update_golden, golden_executor):
    result = EXPERIMENTS[name](scale=SCALE, seed=SEED, executor=golden_executor)
    table = normalize(result["table"])

    path = golden_path(name)
    if update_golden:
        GOLDEN_DIR.mkdir(exist_ok=True)
        path.write_text(table + "\n")
        return
    if not path.exists():
        pytest.fail(
            f"missing golden fixture {path}; generate it with "
            "pytest tests/experiments/test_golden.py --update-golden"
        )

    expected = normalize(path.read_text())
    if table != expected:
        diff = "\n".join(
            difflib.unified_diff(
                expected.splitlines(),
                table.splitlines(),
                fromfile=f"golden/{name}.txt",
                tofile=f"{name} (current)",
                lineterm="",
            )
        )
        pytest.fail(
            f"{name} output drifted from its golden fixture "
            f"(scale={SCALE}, seed={SEED}). If the change is intentional, "
            f"rerun with --update-golden and commit the diff.\n{diff}"
        )

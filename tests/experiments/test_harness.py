"""Tests for the experiment harness plumbing and the cheap experiments.

The heavy simulations are exercised by ``benchmarks/``; here we cover
the harness machinery (registry, CLI, formatting, scales) plus the
experiments that are static or near-instant.
"""

import pytest

from repro.experiments import EXPERIMENTS, SCALES
from repro.experiments import common, fig05_datasizes, table1_connectivity
from repro.experiments import table2_traces, table4_paths
from repro.experiments.runner import main


class TestRegistry:
    def test_every_figure_and_table_has_an_entry(self):
        for name in ("fig1", "fig3", "fig5", "fig11", "fig12", "fig13",
                     "fig14", "fig15", "fig16", "fig17", "fig18", "fig19",
                     "fig20", "table1", "table2", "table4",
                     "sens-interchiplet", "sens-speedups", "char-glue",
                     "char-utilization", "char-energy", "char-events",
                     "char-branches"):
            assert name in EXPERIMENTS

    def test_scales(self):
        assert set(SCALES) == {"smoke", "quick", "full"}
        assert SCALES["smoke"] < SCALES["quick"] < SCALES["full"]

    def test_requests_for_unknown_scale(self):
        with pytest.raises(ValueError):
            common.requests_for("enormous")


class TestFormatting:
    def test_format_table_alignment(self):
        table = common.format_table(
            ["a", "long-header"], [["x", 1.0], ["longer-cell", 12345.6]]
        )
        lines = table.splitlines()
        # Lines are rstripped (trailing padding breaks snapshot diffs) ...
        assert all(line == line.rstrip() for line in lines)
        # ... but interior columns still align: every second-column cell
        # starts at the same offset.
        cell_rows = [
            line for line in lines if line and not set(line) <= {"-", " "}
        ]
        starts = {line.index(line.split(None, 1)[1]) for line in cell_rows}
        assert len(starts) == 1

    def test_pct_reduction(self):
        assert common.pct_reduction(100.0, 25.0) == pytest.approx(75.0)
        assert common.pct_reduction(0.0, 10.0) == 0.0


class TestCheapExperiments:
    def test_table4_exact_reproduction(self):
        result = table4_paths.run()
        assert all(entry["match"] for entry in result["services"].values())

    def test_table2_catalogue_closed(self):
        result = table2_traces.run()
        assert all(e["fits_8_bytes"] for e in result["traces"].values())

    def test_table1_flexible_connectivity(self):
        result = table1_connectivity.run()
        dser = result["connectivity"]["Dser"]
        assert len(dser["destinations"]) >= 3  # Ser, Dcmp, LdB, ...

    def test_fig5_sizes_sane(self):
        result = fig05_datasizes.run()
        for entry in result["sizes"].values():
            assert entry["in"]["min"] <= entry["in"]["median"] <= entry["in"]["max"]


class TestRunnerCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig11" in out and "table4" in out

    def test_unknown_experiment(self, capsys):
        assert main(["warp-figure"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_run_single_experiment(self, capsys):
        assert main(["table4", "--scale", "smoke"]) == 0
        out = capsys.readouterr().out
        assert "Table IV" in out
        assert "completed in" in out

    def test_bad_scale_rejected(self):
        with pytest.raises(SystemExit):
            main(["table4", "--scale", "galactic"])

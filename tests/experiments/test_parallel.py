"""The sharded runner framework: executor, ordering, caching.

(The parallel-equals-serial property lives in ``test_property.py``; it
needs hypothesis, which is optional.)
"""

import pickle

import pytest

from repro.experiments import EXPERIMENTS, SHARDED, get_sharded
from repro.experiments.cache import ResultCache, code_fingerprint
from repro.experiments.parallel import (
    Shard,
    ShardedExperiment,
    ShardExecutor,
    _run_shard_task,
    default_jobs,
    single_shard,
)
from repro.sim import derive_seed


class TestParallelEqualsSerial:
    def test_multi_shard_experiment_through_pool(self):
        # fig1 fans out one shard per service; force the real
        # multiprocessing path and check byte-identical tables.
        serial = EXPERIMENTS["fig1"](scale="smoke", seed=0)
        with ShardExecutor(jobs=2) as executor:
            parallel = EXPERIMENTS["fig1"](
                scale="smoke", seed=0, executor=executor
            )
        assert parallel["table"] == serial["table"]
        assert parallel == serial


class TestFramework:
    def test_registry_covers_every_experiment(self):
        assert set(SHARDED) == set(EXPERIMENTS)
        for name, sharded in SHARDED.items():
            assert sharded.name == name

    def test_get_sharded_unknown(self):
        with pytest.raises(KeyError, match="unknown experiment"):
            get_sharded("warp-figure")

    def test_shards_are_picklable(self):
        for name in ("fig1", "fig13", "char-energy"):
            for shard in SHARDED[name].shards(scale="smoke", seed=0):
                clone = pickle.loads(pickle.dumps(shard))
                assert clone.key == shard.key
                assert clone.seed == shard.seed

    def test_duplicate_shard_keys_rejected(self):
        bad = ShardedExperiment(
            "bad",
            lambda scale="quick", seed=0: [
                Shard("bad", ("x",)), Shard("bad", ("x",))
            ],
            lambda shard, scale: None,
            lambda payloads, scale, seed: {},
        )
        with pytest.raises(ValueError, match="duplicate shard keys"):
            bad.shards()

    def test_single_shard_wraps_classic_signature(self):
        calls = []

        def compute(scale, seed, flavor="plain"):
            calls.append((scale, seed, flavor))
            return {"table": flavor}

        wrapped = single_shard("wrapped", compute)
        result = wrapped.run(scale="smoke", seed=7, flavor="spicy")
        assert result == {"table": "spicy"}
        assert calls == [("smoke", 7, "spicy")]

    def test_run_shard_task_resolves_registry(self):
        shard = SHARDED["table2"].shards(scale="smoke", seed=0)[0]
        key, payload, duration = _run_shard_task(("table2", shard, "smoke"))
        assert key == shard.key
        assert "traces" in payload
        assert duration >= 0.0

    def test_results_follow_shard_order(self):
        # Merge sees payloads keyed and ordered by make_shards, however
        # the executor scheduled them.
        order = []

        def merge(payloads, scale, seed):
            order.extend(payloads)
            return {}

        exp = ShardedExperiment(
            "ordered",
            lambda scale="quick", seed=0: [
                Shard("ordered", (i,), {}, i) for i in (3, 1, 2)
            ],
            lambda shard, scale: shard.key[0],
            merge,
        )
        exp.run(scale="smoke", seed=0)
        assert order == [(3,), (1,), (2,)]

    def test_default_jobs_positive(self):
        assert default_jobs() >= 1

    def test_derive_seed_stable_and_distinct(self):
        assert derive_seed(0, "arrivals/x") == derive_seed(0, "arrivals/x")
        assert derive_seed(0, "fig13") != derive_seed(1, "fig13")
        assert derive_seed(0, "a") != derive_seed(0, "b")


def _counting_experiment(counter):
    def run_shard(shard, scale):
        counter.append(shard.key)
        return shard.key[0] * 10

    return ShardedExperiment(
        "counting",
        lambda scale="quick", seed=0: [
            Shard("counting", (i,), {}, seed) for i in range(3)
        ],
        run_shard,
        lambda payloads, scale, seed: dict(payloads),
    )


class TestCache:
    def test_roundtrip_and_stats(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        shard = Shard("exp", ("a", 1), {"p": 2}, 42)
        assert cache.get("exp", "smoke", shard) is None
        cache.put("exp", "smoke", shard, {"value": 7})
        assert cache.get("exp", "smoke", shard) == ({"value": 7},)
        assert (cache.stats.hits, cache.stats.misses, cache.stats.writes) == (
            1, 1, 1,
        )

    def test_none_payload_distinguished_from_miss(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        shard = Shard("exp", ("a",))
        cache.put("exp", "smoke", shard, None)
        assert cache.get("exp", "smoke", shard) == (None,)

    def test_key_sensitivity(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        cache.put("exp", "smoke", Shard("exp", ("a",), {}, 1), "x")
        assert cache.get("exp", "smoke", Shard("exp", ("a",), {}, 2)) is None
        assert cache.get("exp", "quick", Shard("exp", ("a",), {}, 1)) is None
        assert cache.get("exp", "smoke", Shard("exp", ("b",), {}, 1)) is None

    def test_refresh_recomputes_but_rewrites(self, tmp_path):
        shard = Shard("exp", ("a",))
        ResultCache(str(tmp_path)).put("exp", "smoke", shard, "stale")
        cache = ResultCache(str(tmp_path), refresh=True)
        assert cache.get("exp", "smoke", shard) is None
        cache.put("exp", "smoke", shard, "fresh")
        assert ResultCache(str(tmp_path)).get("exp", "smoke", shard) == ("fresh",)

    def test_corrupt_entry_counts_as_miss(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        shard = Shard("exp", ("a",))
        cache.put("exp", "smoke", shard, "ok")
        path = cache.path_for("exp", "smoke", shard)
        with open(path, "wb") as handle:
            handle.write(b"not a pickle")
        assert cache.get("exp", "smoke", shard) is None
        assert cache.stats.errors == 1

    def test_code_fingerprint_stable_within_process(self):
        assert code_fingerprint() == code_fingerprint()
        assert len(code_fingerprint()) == 64

    def test_executor_serves_second_run_from_cache(self, tmp_path):
        counter = []
        exp = _counting_experiment(counter)
        cache = ResultCache(str(tmp_path))
        with ShardExecutor(jobs=1, cache=cache) as executor:
            first = exp.run(scale="smoke", seed=0, executor=executor)
            second = exp.run(scale="smoke", seed=0, executor=executor)
        assert first == second == {(0,): 0, (1,): 10, (2,): 20}
        assert len(counter) == 3  # shards computed once, replayed once
        assert cache.stats.hits == 3

"""Property test: the merged parallel result equals the serial one.

The headline guarantee of the sharded runner — for any experiment,
seed and worker count, shard seeds derive from the design point, never
from scheduling, so the merged result is identical to a serial run.
"""

import pytest

hypothesis = pytest.importorskip("hypothesis")

from hypothesis import HealthCheck, given, settings  # noqa: E402
from hypothesis import strategies as st  # noqa: E402

from repro.experiments import EXPERIMENTS  # noqa: E402
from repro.experiments.parallel import ShardExecutor  # noqa: E402

#: Experiments cheap enough to run many times under hypothesis (all
#: finish in well under a second at smoke scale).
CHEAP = ["fig1", "fig5", "table1", "table2", "table4", "char-branches"]

_serial_cache = {}


def _serial(name, seed):
    key = (name, seed)
    if key not in _serial_cache:
        _serial_cache[key] = EXPERIMENTS[name](scale="smoke", seed=seed)
    return _serial_cache[key]


@settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    name=st.sampled_from(CHEAP),
    seed=st.integers(min_value=0, max_value=3),
    jobs=st.sampled_from([1, 2, 4]),
)
def test_merged_result_matches_serial(name, seed, jobs):
    with ShardExecutor(jobs=jobs) as executor:
        parallel = EXPERIMENTS[name](scale="smoke", seed=seed, executor=executor)
    assert parallel == _serial(name, seed)

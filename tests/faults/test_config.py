"""FaultConfig: the zero config is inert, bad knobs are rejected."""

import dataclasses

import pytest

from repro.faults import FaultConfig


def test_default_config_is_disabled():
    assert not FaultConfig().enabled


@pytest.mark.parametrize(
    "field, value",
    [
        ("pe_transient_rate", 0.1),
        ("pe_wedge_rate", 0.01),
        ("pe_stuck_mtbf_ns", 1e6),
        ("dma_stall_rate", 0.2),
        ("dma_corruption_rate", 0.01),
        ("noc_flap_interval_ns", 1e6),
        ("noc_degraded_factor", 1.5),
        ("atm_outage_interval_ns", 1e6),
        ("manager_outage_interval_ns", 1e6),
        ("gray_limp_probability", 0.3),
        ("gray_slowdown_interval_ns", 1e6),
        ("gray_ramp_interval_ns", 1e6),
    ],
)
def test_any_fault_source_enables(field, value):
    assert dataclasses.replace(FaultConfig(), **{field: value}).enabled


@pytest.mark.parametrize(
    "field, value",
    [
        ("gray_limp_probability", 0.3),
        ("gray_slowdown_interval_ns", 1e6),
        ("gray_ramp_interval_ns", 1e6),
    ],
)
def test_gray_sources_set_gray_enabled(field, value):
    assert dataclasses.replace(FaultConfig(), **{field: value}).gray_enabled
    assert not FaultConfig().gray_enabled


def test_gray_factors_without_triggers_do_not_enable():
    config = FaultConfig(
        gray_limp_factor=9.0,
        gray_slowdown_factor=9.0,
        gray_ramp_peak_factor=9.0,
        gray_slowdown_kind="TCP",
    )
    assert not config.gray_enabled
    assert not config.enabled


def test_recovery_knobs_alone_do_not_enable():
    config = FaultConfig(
        watchdog_timeout_ns=1e5, step_max_retries=7, tcp_max_retries=5
    )
    assert not config.enabled


def test_retry_budget_knobs_alone_do_not_enable():
    config = FaultConfig(
        retry_budget_tokens=50.0, retry_budget_refill_per_s=1000.0
    )
    assert not config.enabled


@pytest.mark.parametrize(
    "field, value",
    [
        ("pe_transient_rate", -0.1),
        ("pe_transient_rate", 1.5),
        ("pe_wedge_rate", 2.0),
        ("dma_stall_rate", -1.0),
        ("dma_corruption_rate", 7.0),
        ("noc_degraded_factor", 0.5),
        ("step_max_retries", -1),
        ("tcp_max_retries", -2),
        ("watchdog_timeout_ns", 0.0),
        ("gray_limp_probability", -0.1),
        ("gray_limp_probability", 1.5),
        ("gray_limp_factor", 0.5),
        ("gray_slowdown_interval_ns", -1e6),
        ("gray_slowdown_ns", -1.0),
        ("gray_slowdown_factor", 0.9),
        ("gray_ramp_peak_factor", 0.0),
        ("gray_ramp_steps", 0),
        ("backoff_base_ns", -10.0),
        ("breaker_window_ns", -1.0),
        ("retry_budget_tokens", -1.0),
        ("retry_budget_refill_per_s", -100.0),
    ],
)
def test_validate_rejects_bad_knobs(field, value):
    config = dataclasses.replace(FaultConfig(), **{field: value})
    with pytest.raises(ValueError):
        config.validate()


@pytest.mark.parametrize("scope", ["on_package", "warp-drive", ""])
def test_validate_rejects_unknown_ramp_scopes(scope):
    config = dataclasses.replace(FaultConfig(), gray_ramp_placement=scope)
    with pytest.raises(ValueError, match="gray_ramp_placement"):
        config.validate()


@pytest.mark.parametrize("scope", ["near_cache", "pcie", "nic", "remote"])
def test_validate_accepts_every_placement_hop(scope):
    dataclasses.replace(FaultConfig(), gray_ramp_placement=scope).validate()


def test_rejection_messages_name_the_knob():
    """Actionable errors: the message carries the field and the value."""
    with pytest.raises(ValueError, match="gray_limp_probability"):
        FaultConfig(gray_limp_probability=-0.5).validate()
    with pytest.raises(ValueError, match="gray_slowdown_interval_ns"):
        FaultConfig(gray_slowdown_interval_ns=-2.0).validate()
    with pytest.raises(ValueError, match="on_package"):
        FaultConfig(gray_ramp_placement="on_package").validate()


def test_default_config_validates():
    FaultConfig().validate()

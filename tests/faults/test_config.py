"""FaultConfig: the zero config is inert, bad knobs are rejected."""

import dataclasses

import pytest

from repro.faults import FaultConfig


def test_default_config_is_disabled():
    assert not FaultConfig().enabled


@pytest.mark.parametrize(
    "field, value",
    [
        ("pe_transient_rate", 0.1),
        ("pe_wedge_rate", 0.01),
        ("pe_stuck_mtbf_ns", 1e6),
        ("dma_stall_rate", 0.2),
        ("dma_corruption_rate", 0.01),
        ("noc_flap_interval_ns", 1e6),
        ("noc_degraded_factor", 1.5),
        ("atm_outage_interval_ns", 1e6),
        ("manager_outage_interval_ns", 1e6),
    ],
)
def test_any_fault_source_enables(field, value):
    assert dataclasses.replace(FaultConfig(), **{field: value}).enabled


def test_recovery_knobs_alone_do_not_enable():
    config = FaultConfig(
        watchdog_timeout_ns=1e5, step_max_retries=7, tcp_max_retries=5
    )
    assert not config.enabled


@pytest.mark.parametrize(
    "field, value",
    [
        ("pe_transient_rate", -0.1),
        ("pe_transient_rate", 1.5),
        ("pe_wedge_rate", 2.0),
        ("dma_stall_rate", -1.0),
        ("dma_corruption_rate", 7.0),
        ("noc_degraded_factor", 0.5),
        ("step_max_retries", -1),
        ("tcp_max_retries", -2),
        ("watchdog_timeout_ns", 0.0),
    ],
)
def test_validate_rejects_bad_knobs(field, value):
    config = dataclasses.replace(FaultConfig(), **{field: value})
    with pytest.raises(ValueError):
        config.validate()


def test_default_config_validates():
    FaultConfig().validate()

"""Gray faults: slow-but-alive categories of the fault plane.

Pins the three gray categories (machine limp, instance slowdowns,
congestion ramps) against the plane's core contracts: zero-rate knobs
are byte-identical to the fault-free simulator, active knobs only ever
*slow* work (nothing errors), scoping is honoured (kind filters,
placement hops), and seeded runs reproduce exactly. ``CHAOS_SEED``
rotates the seed in CI (see the chaos job).
"""

import os
from typing import List

import pytest

from repro.faults import FaultConfig
from repro.hw import MachineParams
from repro.server import SimulatedServer
from repro.sim import LatencyRecorder
from repro.workloads import social_network_services
from repro.workloads.arrivals import make_arrivals

SERVICE = "StoreP"
RATE_RPS = 2000.0
N_REQUESTS = 40
SEED = int(os.environ.get("CHAOS_SEED", "0"))

LIMP = FaultConfig(gray_limp_probability=1.0, gray_limp_factor=3.0)
SLOWDOWN = FaultConfig(
    gray_slowdown_interval_ns=1e6,
    gray_slowdown_ns=2e6,
    gray_slowdown_factor=8.0,
    gray_slowdown_max=16,
)
RAMP = FaultConfig(
    gray_ramp_interval_ns=2e6,
    gray_ramp_ns=4e6,
    gray_ramp_peak_factor=8.0,
    gray_ramp_steps=4,
    gray_ramp_max=8,
    gray_ramp_placement="nic",
)


def _measure(faults, seed=SEED, placement=None, **server_kw):
    """One seeded open-loop run; returns (samples, mean, server)."""
    spec = [s for s in social_network_services() if s.name == SERVICE][0]
    params = (
        MachineParams().with_placement(placement) if placement else None
    )
    server = SimulatedServer(
        "accelflow",
        machine_params=params,
        seed=seed,
        faults=faults,
        **server_kw,
    )
    env = server.env
    arrivals = make_arrivals(
        "poisson", RATE_RPS, server.streams.stream(f"arrivals/{spec.name}")
    )
    in_flight: List = []

    def source(env):
        for _ in range(N_REQUESTS):
            yield env.timeout(arrivals.next_gap_ns())
            request = server.make_request(spec)
            in_flight.append((request, server.submit(request)))

    src = env.process(source(env))

    def watch(env):
        yield src
        yield env.all_of([process for _, process in in_flight])

    env.run(until=env.process(watch(env)))
    assert all(r.completed for r, _ in in_flight)
    assert not any(r.error for r, _ in in_flight), "gray faults never error"
    recorder = LatencyRecorder(warmup_fraction=0.0)
    for request, _ in in_flight:
        recorder.record(request.latency_ns)
    return tuple(recorder.samples), recorder.mean(), server


class TestZeroRateIdentity:
    def test_gray_knobs_at_zero_install_nothing(self):
        config = FaultConfig()
        assert not config.gray_enabled
        assert not config.enabled

    def test_gray_half_absent_when_only_failstop_enabled(self):
        """A fail-stop-only config must not construct GrayFaults (no
        streams, no branches, byte-for-byte legacy behavior)."""
        _, _, server = _measure(FaultConfig(pe_transient_rate=0.05))
        assert server.fault_plane is not None
        assert server.fault_plane.gray is None

    def test_failstop_run_identical_with_and_without_gray_fields(self):
        """The gray *fields* existing on the config (at zero) must not
        move one sample of a fail-stop run."""
        base = FaultConfig(pe_transient_rate=0.1, dma_stall_rate=0.05)
        a, _, _ = _measure(base)
        b, _, _ = _measure(
            FaultConfig(
                pe_transient_rate=0.1,
                dma_stall_rate=0.05,
                gray_limp_factor=9.0,  # factor without a trigger: inert
                gray_slowdown_factor=9.0,
            )
        )
        assert a == b


class TestMachineLimp:
    def test_certain_limp_inflates_every_request(self):
        clean, clean_mean, _ = _measure(None)
        limped, limp_mean, server = _measure(LIMP)
        gray = server.fault_plane.gray
        assert gray is not None and gray.limping
        assert gray.limps == 1
        assert limp_mean > clean_mean
        # Every accelerator op slowed: each sample strictly grows.
        assert all(l > c for l, c in zip(limped, clean))

    def test_zero_probability_never_limps(self):
        clean, _, _ = _measure(None)
        config = FaultConfig(
            gray_limp_probability=0.0,
            # Another gray trigger keeps the plane+GrayFaults installed
            # but its injector draws from its own stream: the limp draw
            # must simply never happen at probability 0.
            gray_slowdown_interval_ns=1e9,
            gray_slowdown_max=1,
        )
        _, _, server = _measure(config)
        assert server.fault_plane.gray.limping is False
        assert server.fault_plane.gray.limps == 0


class TestInstanceSlowdown:
    def test_slowdown_windows_inflate_latency(self):
        _, clean_mean, _ = _measure(None)
        _, slow_mean, server = _measure(SLOWDOWN)
        gray = server.fault_plane.gray
        assert gray.slowdowns > 0
        assert slow_mean > clean_mean

    def test_windows_close_after_drain(self):
        _, _, server = _measure(SLOWDOWN)
        server.env.run()  # let remaining injector windows expire
        assert not server.fault_plane.gray._slow

    def test_kind_scoping_only_slows_that_kind(self):
        """Scoped to one kind, every opened window targets that kind —
        checked through the telemetry events the plane publishes."""
        from repro.obs import ObsConfig
        from repro.obs.telemetry import FaultInjected

        scoped = FaultConfig(
            gray_slowdown_interval_ns=1e6,
            gray_slowdown_ns=2e6,
            gray_slowdown_factor=8.0,
            gray_slowdown_max=16,
            gray_slowdown_kind="TCP",
        )
        obs = ObsConfig(telemetry=True)
        _, _, server = _measure(scoped, obs=obs)
        events = [
            event
            for event in obs.bus.recent()
            if isinstance(event, FaultInjected)
            and event.category == "gray-slowdown"
        ]
        assert server.fault_plane.gray.slowdowns > 0
        assert events, "no slowdown events reached the bus"
        assert all(e.args["accel"] == "TCP" for e in events)

    def test_unknown_kind_rejected_at_attach(self):
        config = FaultConfig(
            gray_slowdown_interval_ns=1e6, gray_slowdown_kind="Warp"
        )
        with pytest.raises(ValueError, match="gray_slowdown_kind"):
            SimulatedServer("accelflow", seed=SEED, faults=config)


class TestCongestionRamp:
    def test_ramp_inflates_the_scoped_hop(self):
        clean, clean_mean, _ = _measure(None, placement="nic")
        ramped, ramp_mean, server = _measure(RAMP, placement="nic")
        gray = server.fault_plane.gray
        assert gray.ramps > 0
        assert ramped != clean
        assert ramp_mean > clean_mean

    def test_ramp_noop_without_fabric(self):
        """All-on-package machine: no placement fabric, so the ramp
        injector never even starts — byte-identical samples."""
        clean, _, _ = _measure(None)
        samples, _, server = _measure(RAMP)
        assert server.fault_plane is not None
        assert server.fault_plane.gray.ramps == 0
        assert samples == clean

    def test_ramp_leaves_other_hops_byte_identical(self):
        """A NIC-scoped ramp must not slow a PCIe-placed machine."""
        clean, _, _ = _measure(None, placement="pcie")
        samples, _, server = _measure(RAMP, placement="pcie")
        assert server.fault_plane.gray.ramps > 0  # injector runs
        assert samples == clean

    def test_factors_reset_after_drain(self):
        _, _, server = _measure(RAMP, placement="nic")
        server.env.run()
        assert all(
            factor == 1.0
            for factor in server.fault_plane._placement_factors.values()
        )


class TestStatsAndDeterminism:
    def test_gray_counters_surface_in_plane_stats(self):
        _, _, server = _measure(SLOWDOWN)
        gray = server.fault_plane.gray
        stats = server.fault_plane.stats()
        assert stats["gray_slowdowns"] == float(gray.slowdowns)
        assert stats["gray_limps"] == float(gray.limps)
        assert stats["gray_ramps"] == float(gray.ramps)
        assert stats["total_injected"] >= stats["gray_slowdowns"]

    def test_service_factor_composes_limp_and_slowdown(self):
        _, _, server = _measure(LIMP)
        gray = server.fault_plane.gray
        accel = server.hardware.all_accelerators()[0]
        assert gray.service_factor(accel) == LIMP.gray_limp_factor
        gray._slow[id(accel)] = 4.0
        assert gray.service_factor(accel) == LIMP.gray_limp_factor * 4.0
        del gray._slow[id(accel)]

    @pytest.mark.parametrize("config", [LIMP, SLOWDOWN], ids=["limp", "slow"])
    def test_seeded_runs_reproduce(self, config):
        a = _measure(config)
        b = _measure(config)
        assert a[0] == b[0]
        assert a[2].fault_plane.stats() == b[2].fault_plane.stats()

    def test_ramp_seeded_runs_reproduce(self):
        a = _measure(RAMP, placement="nic")
        b = _measure(RAMP, placement="nic")
        assert a[0] == b[0]

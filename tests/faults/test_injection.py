"""End-to-end fault injection: every fault recovers or terminates.

Each test cranks one fault source of the hardware fault plane and
checks the recovery plane's contract: requests never hang, the expected
recovery mechanism (retry, watchdog, breaker, DMA re-issue, CPU
degradation) actually fires, and the whole run stays deterministic for
a fixed seed. ``CHAOS_SEED`` rotates the seeds in CI so successive
pipelines explore different fault interleavings.
"""

import os

from repro.faults import FaultConfig
from repro.server import SimulatedServer
from repro.workloads import social_network_services

SERVICES = {s.name: s for s in social_network_services()}

#: CI chaos knob: every seed must satisfy the same invariants.
CHAOS_SEED = int(os.environ.get("CHAOS_SEED", "0"))


def run_all(server, spec, count):
    requests = [server.make_request(spec) for _ in range(count)]
    procs = [server.submit(r) for r in requests]
    server.env.run(until=server.env.all_of(procs))
    assert all(r.completed for r in requests), "a request never terminated"
    return requests


def make_server(architecture="accelflow", faults=None, seed=CHAOS_SEED, **kw):
    return SimulatedServer(architecture, faults=faults, seed=seed, **kw)


class TestDisabledPlane:
    def test_zero_rate_config_installs_no_plane(self):
        server = make_server(faults=FaultConfig())
        assert server.fault_plane is None
        assert server.orchestrator.recovery is None

    def test_zero_rate_config_matches_no_config_exactly(self):
        """The fault plane is cost-free when disabled: same seeds, same
        latencies, same stats, bit for bit."""
        baseline = make_server(faults=None)
        inert = make_server(faults=FaultConfig())
        spec = SERVICES["StoreP"]
        base_requests = run_all(baseline, spec, 10)
        inert_requests = run_all(inert, spec, 10)
        assert [r.latency_ns for r in base_requests] == [
            r.latency_ns for r in inert_requests
        ]
        assert baseline.orchestrator.stats() == inert.orchestrator.stats()


class TestTransientFaults:
    def test_moderate_rate_recovers_via_retries(self):
        server = make_server(faults=FaultConfig(pe_transient_rate=0.2))
        requests = run_all(server, SERVICES["UniqId"], 10)
        recovery = server.orchestrator.recovery
        assert server.fault_plane.pe_transients > 0
        assert recovery.step_retries > 0
        assert sum(r.step_retries for r in requests) == recovery.step_retries
        assert not any(r.error for r in requests)

    def test_certain_faults_degrade_to_cpu(self):
        """Rate 1.0: every attempt corrupts, retries exhaust, and the
        request survives on the CPU fallback path."""
        server = make_server(
            faults=FaultConfig(pe_transient_rate=1.0, backoff_base_ns=100.0)
        )
        requests = run_all(server, SERVICES["UniqId"], 5)
        recovery = server.orchestrator.recovery
        assert recovery.degraded_to_cpu > 0
        assert all(r.fell_back for r in requests)
        assert not any(r.error for r in requests)

    def test_breakers_trip_under_sustained_faults(self):
        server = make_server(
            faults=FaultConfig(
                pe_transient_rate=1.0,
                backoff_base_ns=100.0,
                breaker_failure_threshold=2,
            )
        )
        run_all(server, SERVICES["UniqId"], 5)
        assert server.orchestrator.recovery.breaker_trips > 0


class TestWedgedPes:
    def test_watchdog_rescues_wedged_dispatches(self):
        server = make_server(
            faults=FaultConfig(
                pe_wedge_rate=0.5,
                pe_wedge_ns=1e6,
                watchdog_timeout_ns=1e5,
                backoff_base_ns=100.0,
            )
        )
        requests = run_all(server, SERVICES["UniqId"], 8)
        recovery = server.orchestrator.recovery
        assert server.fault_plane.pe_wedges > 0
        assert recovery.watchdog_timeouts > 0
        assert all(r.completed for r in requests)

    def test_short_wedges_ride_out_without_watchdog(self):
        """Wedges shorter than the watchdog budget just add latency."""
        server = make_server(
            faults=FaultConfig(
                pe_wedge_rate=1.0, pe_wedge_ns=1e4, watchdog_timeout_ns=5e6
            )
        )
        requests = run_all(server, SERVICES["UniqId"], 3)
        recovery = server.orchestrator.recovery
        assert server.fault_plane.pe_wedges > 0
        assert recovery.watchdog_timeouts == 0
        assert not any(r.error or r.fell_back for r in requests)


class TestStuckPes:
    def test_stuck_pes_repair_and_work_continues(self):
        server = make_server(
            faults=FaultConfig(pe_stuck_mtbf_ns=5e4, pe_repair_ns=1e5)
        )
        requests = run_all(server, SERVICES["StoreP"], 10)
        assert server.fault_plane.pe_stuck > 0
        assert all(r.completed for r in requests)
        # Repair: after the run drains, every accelerator has its full
        # PE complement back unless a repair window is still open.
        server.env.run()  # let remaining injector windows expire
        for accel in server.hardware.all_accelerators():
            assert len(accel._free_pes.items) == len(accel.pes)


class TestDmaFaults:
    def test_stalls_add_latency_not_errors(self):
        server = make_server(
            faults=FaultConfig(dma_stall_rate=0.5, dma_stall_ns=5e4)
        )
        requests = run_all(server, SERVICES["StoreP"], 5)
        assert server.fault_plane.dma_stalls > 0
        assert not any(r.error for r in requests)

    def test_corruption_retries_then_recovers(self):
        server = make_server(
            faults=FaultConfig(dma_corruption_rate=0.3, backoff_base_ns=100.0)
        )
        requests = run_all(server, SERVICES["StoreP"], 10)
        recovery = server.orchestrator.recovery
        assert server.fault_plane.dma_corruptions > 0
        assert recovery.dma_retries > 0
        # 0.3^3 per transfer: the odd fatal exhaustion is possible but
        # every request still terminated with an explicit status.
        assert all(r.completed for r in requests)

    def test_certain_corruption_fails_requests_cleanly(self):
        server = make_server(
            faults=FaultConfig(dma_corruption_rate=1.0, backoff_base_ns=100.0)
        )
        requests = run_all(server, SERVICES["StoreP"], 5)
        recovery = server.orchestrator.recovery
        assert recovery.dma_fatal > 0
        assert any(r.error for r in requests)


class TestNocFaults:
    def test_link_flaps_block_then_release(self):
        server = make_server(
            faults=FaultConfig(noc_flap_interval_ns=2e4, noc_flap_down_ns=5e4)
        )
        requests = run_all(server, SERVICES["StoreP"], 10)
        assert server.fault_plane.link_flaps > 0
        assert not any(r.error for r in requests)
        server.env.run()
        assert not server.fault_plane._down_links  # all links back up

    def test_degraded_links_slow_transfers(self):
        clean = make_server(seed=7)
        worn = make_server(
            seed=7, faults=FaultConfig(noc_degraded_factor=4.0)
        )
        spec = SERVICES["StoreP"]
        clean_requests = run_all(clean, spec, 5)
        worn_requests = run_all(worn, spec, 5)
        assert sum(r.latency_ns for r in worn_requests) > sum(
            r.latency_ns for r in clean_requests
        )


class TestAtmOutages:
    def test_reads_wait_out_the_outage(self):
        server = make_server(
            faults=FaultConfig(atm_outage_interval_ns=5e4, atm_outage_ns=1e5)
        )
        requests = run_all(server, SERVICES["StoreP"], 10)
        assert server.fault_plane.atm_outages > 0
        assert not any(r.error for r in requests)
        server.env.run()
        assert server.fault_plane._atm_gate is None


class TestManagerOutages:
    CONFIG = FaultConfig(manager_outage_interval_ns=1e5, manager_outage_ns=5e5)

    def test_relief_stalls_behind_dark_manager(self):
        faulted = make_server("relief", faults=self.CONFIG, seed=3)
        clean = make_server("relief", seed=3)
        spec = SERVICES["StoreP"]
        faulted_requests = run_all(faulted, spec, 5)
        clean_requests = run_all(clean, spec, 5)
        assert faulted.fault_plane.manager_outages > 0
        assert sum(r.latency_ns for r in faulted_requests) > sum(
            r.latency_ns for r in clean_requests
        )

    def test_decentralized_architectures_have_no_manager_to_lose(self):
        server = make_server("accelflow", faults=self.CONFIG, seed=3)
        requests = run_all(server, SERVICES["StoreP"], 5)
        assert server.fault_plane.manager_outages == 0
        assert not any(r.error for r in requests)


class TestDeterminism:
    CONFIG = FaultConfig(
        pe_transient_rate=0.2,
        pe_wedge_rate=0.1,
        pe_wedge_ns=5e5,
        dma_stall_rate=0.2,
        dma_corruption_rate=0.1,
        noc_flap_interval_ns=1e5,
        atm_outage_interval_ns=2e5,
        watchdog_timeout_ns=2e5,
        backoff_base_ns=100.0,
        # Gray categories ride in the same mix: their injectors draw
        # from their own named streams, so adding them must not detune
        # the fail-stop draws — and the whole mix stays reproducible.
        gray_limp_probability=0.5,
        gray_limp_factor=2.0,
        gray_slowdown_interval_ns=5e5,
        gray_slowdown_ns=3e5,
        gray_slowdown_factor=3.0,
        gray_slowdown_max=8,
        retry_budget_tokens=64.0,
        retry_budget_refill_per_s=1000.0,
    )

    def _run(self, seed):
        server = make_server(faults=self.CONFIG, seed=seed)
        requests = run_all(server, SERVICES["StoreP"], 10)
        return (
            [r.latency_ns for r in requests],
            server.fault_plane.stats(),
            server.orchestrator.recovery.stats(),
        )

    def test_same_seed_same_faults_same_outcome(self):
        assert self._run(CHAOS_SEED) == self._run(CHAOS_SEED)

    def test_different_seed_different_interleaving(self):
        latencies_a, _, _ = self._run(CHAOS_SEED)
        latencies_b, _, _ = self._run(CHAOS_SEED + 1)
        assert latencies_a != latencies_b

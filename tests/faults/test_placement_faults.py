"""Placement x fault interaction: hop faults only bite off-package.

A PCIe link flap can only hurt a machine that actually has a PCIe hop;
an all-on-package machine has no such link, so the very same
:class:`FaultConfig` must leave it byte-identical. The seeded runs here
pin both directions of that contract, plus the NIC congestion window.
``CHAOS_SEED`` rotates the seed in CI (see the chaos job).
"""

import os
from typing import List

from repro.faults import FaultConfig
from repro.hw import MachineParams
from repro.server import SimulatedServer
from repro.sim import LatencyRecorder
from repro.workloads import social_network_services
from repro.workloads.arrivals import make_arrivals

SERVICE = "StoreP"
RATE_RPS = 2000.0
N_REQUESTS = 60
SEED = int(os.environ.get("CHAOS_SEED", "0"))

PCIE_FLAPS = FaultConfig(
    pcie_flap_interval_ns=3e6,
    pcie_flap_down_ns=5e5,
    pcie_flap_max=64,
)
NIC_CONGESTION = FaultConfig(
    nic_congestion_interval_ns=3e6,
    nic_congestion_ns=1e6,
    nic_congestion_factor=8.0,
    nic_congestion_max=64,
)


def _measure(placement, faults, seed=SEED):
    """One seeded open-loop run; returns (samples, p99, server)."""
    spec = [s for s in social_network_services() if s.name == SERVICE][0]
    server = SimulatedServer(
        "accelflow",
        machine_params=MachineParams().with_placement(placement),
        seed=seed,
        faults=faults,
    )
    env = server.env
    arrivals = make_arrivals(
        "poisson", RATE_RPS, server.streams.stream(f"arrivals/{spec.name}")
    )
    in_flight: List = []

    def source(env):
        for _ in range(N_REQUESTS):
            yield env.timeout(arrivals.next_gap_ns())
            request = server.make_request(spec)
            in_flight.append((request, server.submit(request)))

    src = env.process(source(env))

    def watch(env):
        yield src
        yield env.all_of([process for _, process in in_flight])

    env.run(until=env.process(watch(env)))
    recorder = LatencyRecorder(warmup_fraction=0.0)
    for request, _ in in_flight:
        recorder.record(request.latency_ns)
    return tuple(recorder.samples), recorder.mean(), server


class TestPcieFlap:
    def test_flap_degrades_pcie_placement(self):
        """A down window only ever *delays* crossings, so with the same
        arrivals the mean strictly rises (P99 can dodge a window when
        the tail request happens to miss it, so mean is the robust
        monotone signal under CHAOS_SEED rotation)."""
        clean_samples, clean_mean, _ = _measure("pcie", None)
        flapped_samples, flapped_mean, server = _measure("pcie", PCIE_FLAPS)
        assert server.fault_plane.pcie_flaps > 0
        assert flapped_samples != clean_samples
        assert flapped_mean > clean_mean

    def test_flap_leaves_on_package_byte_identical(self):
        """Same FaultConfig, but nothing lives behind PCIe: no injector
        starts and not one sample moves."""
        clean_samples, _, _ = _measure("on_package", None)
        flapped_samples, _, server = _measure("on_package", PCIE_FLAPS)
        assert server.fault_plane is not None  # the config IS enabled
        assert server.fault_plane.pcie_flaps == 0
        assert flapped_samples == clean_samples

    def test_flap_counts_surface_in_stats(self):
        _, _, server = _measure("pcie", PCIE_FLAPS)
        stats = server.fault_plane.stats()
        assert stats["pcie_flaps"] == float(server.fault_plane.pcie_flaps)
        assert stats["total_injected"] >= stats["pcie_flaps"]


class TestNicCongestion:
    def test_congestion_degrades_nic_placement(self):
        clean_samples, clean_mean, _ = _measure("nic", None)
        congested_samples, congested_mean, server = _measure(
            "nic", NIC_CONGESTION
        )
        assert server.fault_plane.nic_congestions > 0
        assert congested_samples != clean_samples
        assert congested_mean > clean_mean

    def test_congestion_leaves_pcie_placement_byte_identical(self):
        """Per-placement scoping: a NIC congestion window must not slow
        a machine whose accelerators sit behind PCIe."""
        clean_samples, _, _ = _measure("pcie", None)
        congested_samples, _, server = _measure("pcie", NIC_CONGESTION)
        # The injector runs (the fabric exists) but its windows target
        # the NIC hop, which this machine never crosses.
        assert server.fault_plane.nic_congestions > 0
        assert congested_samples == clean_samples


class TestConfigKnobs:
    def test_hop_knobs_enable_the_plane(self):
        assert FaultConfig(pcie_flap_interval_ns=1e6).enabled
        assert FaultConfig(nic_congestion_interval_ns=1e6).enabled
        assert not FaultConfig().enabled

    def test_congestion_factor_validated(self):
        import pytest

        with pytest.raises(ValueError, match="nic_congestion_factor"):
            FaultConfig(nic_congestion_factor=0.5).validate()

    def test_seeded_runs_reproduce(self):
        a = _measure("pcie", PCIE_FLAPS)[0]
        b = _measure("pcie", PCIE_FLAPS)[0]
        assert a == b

"""CircuitBreaker, RetryBudget, and RecoveryPolicy unit behavior."""

from repro.faults import CircuitBreaker, FaultConfig, RecoveryPolicy
from repro.faults.recovery import RetryBudget
from repro.sim import Environment, RandomStreams

CONFIG = FaultConfig(
    breaker_failure_threshold=3,
    breaker_window_ns=1e6,
    breaker_cooldown_ns=5e6,
)


def _policy(config=CONFIG, seed=0):
    env = Environment()
    streams = RandomStreams(seed)
    return RecoveryPolicy(env, config, streams.stream("faults/recovery/test"))


class TestCircuitBreaker:
    def test_starts_closed(self):
        breaker = CircuitBreaker(CONFIG)
        assert not breaker.is_open
        assert breaker.allow(0.0)

    def test_trips_at_threshold_within_window(self):
        breaker = CircuitBreaker(CONFIG)
        assert not breaker.record_failure(0.0)
        assert not breaker.record_failure(100.0)
        assert breaker.record_failure(200.0)  # third inside the window
        assert breaker.is_open
        assert not breaker.allow(300.0)

    def test_old_failures_age_out_of_window(self):
        breaker = CircuitBreaker(CONFIG)
        breaker.record_failure(0.0)
        breaker.record_failure(100.0)
        # Third failure arrives after the first two left the window.
        assert not breaker.record_failure(5e6)
        assert not breaker.is_open

    def test_half_open_after_cooldown(self):
        breaker = CircuitBreaker(CONFIG)
        for t in (0.0, 1.0, 2.0):
            breaker.record_failure(t)
        assert not breaker.allow(2.0 + 1e6)  # still cooling down
        assert breaker.allow(2.0 + 6e6)  # half-open: trial admitted

    def test_success_closes(self):
        breaker = CircuitBreaker(CONFIG)
        for t in (0.0, 1.0, 2.0):
            breaker.record_failure(t)
        breaker.record_success()
        assert not breaker.is_open
        assert breaker.allow(3.0)

    def test_failed_half_open_trial_restarts_cooldown(self):
        breaker = CircuitBreaker(CONFIG)
        for t in (0.0, 1.0, 2.0):
            breaker.record_failure(t)
        trial_time = 2.0 + 6e6
        assert breaker.allow(trial_time)
        assert breaker.record_failure(trial_time)  # re-trip
        assert not breaker.allow(trial_time + 1e6)
        assert breaker.allow(trial_time + 6e6)


class TestRetryBudget:
    def test_zero_capacity_always_grants_without_counting(self):
        """The default (disabled) bucket is byte-inert: every draw is
        granted and neither counter moves."""
        budget = RetryBudget(0.0, 0.0)
        assert not budget.enabled
        for t in (0.0, 1.0, 1e9):
            assert budget.allow(t)
        assert budget.granted == 0
        assert budget.denied == 0
        assert budget.level(1e9) == 0.0

    def test_tokens_drain_one_per_grant(self):
        budget = RetryBudget(3.0, 0.0)
        assert budget.enabled
        assert budget.allow(0.0)
        assert budget.allow(0.0)
        assert budget.allow(0.0)
        assert not budget.allow(0.0)  # bucket empty, no refill
        assert budget.granted == 3
        assert budget.denied == 1

    def test_lazy_refill_restores_tokens_at_configured_rate(self):
        # 2 tokens/s = 2e-9 tokens/ns: half a simulated second after
        # draining, exactly one token is back.
        budget = RetryBudget(2.0, 2.0)
        assert budget.allow(0.0) and budget.allow(0.0)
        assert not budget.allow(0.0)
        assert not budget.allow(0.25e9)  # 0.5 tokens: still short
        assert budget.allow(0.5e9 + 1.0)  # >= 1 token again
        assert budget.denied == 2

    def test_refill_clamps_at_burst_capacity(self):
        budget = RetryBudget(2.0, 1000.0)
        budget.allow(0.0)
        assert budget.level(1e12) == 2.0  # eons later: capped, not 1e6

    def test_level_reads_through_refill(self):
        budget = RetryBudget(4.0, 1.0)
        budget.allow(0.0)
        assert budget.level(0.0) == 3.0
        assert budget.level(1e9) == 4.0


class TestPolicyBudgetIntegration:
    def test_allow_retry_counts_denials(self):
        config = FaultConfig(
            retry_budget_tokens=2.0, retry_budget_refill_per_s=0.0
        )
        policy = _policy(config)
        assert policy.allow_retry("step")
        assert policy.allow_retry("dma")
        assert not policy.allow_retry("step")
        assert not policy.allow_retry("tcp")
        assert policy.budget_denials == 2
        assert policy.stats()["budget_denials"] == 2.0
        assert policy.stats()["budget_tokens"] == 0.0

    def test_unconfigured_budget_never_denies(self):
        policy = _policy(FaultConfig())
        for _ in range(100):
            assert policy.allow_retry("step")
        assert policy.budget_denials == 0

    def test_denial_publishes_recovery_event(self):
        from repro.obs.telemetry import RecoveryEvent, TelemetryBus

        config = FaultConfig(
            retry_budget_tokens=1.0, retry_budget_refill_per_s=0.0
        )
        policy = _policy(config)
        policy.bus = TelemetryBus()
        assert policy.allow_retry("step")
        assert not policy.allow_retry("step")
        events = [
            e
            for e in policy.bus.recent()
            if isinstance(e, RecoveryEvent)
            and e.kind_name == "retry-budget-exhausted"
        ]
        assert len(events) == 1
        assert events[0].args["path"] == "step"


class TestRecoveryPolicy:
    def test_backoff_grows_and_respects_jitter_bounds(self):
        config = FaultConfig(
            backoff_base_ns=1000.0, backoff_factor=2.0, backoff_jitter=0.5
        )
        policy = _policy(config)
        for attempt in (1, 2, 3, 4):
            nominal = 1000.0 * 2.0 ** (attempt - 1)
            for _ in range(50):
                value = policy.backoff_ns(attempt)
                assert 0.5 * nominal <= value <= 1.5 * nominal

    def test_backoff_without_jitter_is_exact(self):
        config = FaultConfig(
            backoff_base_ns=1000.0, backoff_factor=3.0, backoff_jitter=0.0
        )
        policy = _policy(config)
        assert policy.backoff_ns(1) == 1000.0
        assert policy.backoff_ns(2) == 3000.0
        assert policy.backoff_ns(3) == 9000.0

    def test_pick_prefers_least_occupied_healthy(self):
        class FakeAccel:
            def __init__(self, occupancy):
                self.input_occupancy = occupancy

        policy = _policy()
        idle, busy = FakeAccel(0), FakeAccel(5)
        assert policy.pick([busy, idle], now=0.0) is idle

        # Trip the idle one: pick must route around it.
        for _ in range(CONFIG.breaker_failure_threshold):
            policy.record_failure(idle)
        assert policy.breaker_trips == 1
        assert policy.pick([busy, idle], now=0.0) is busy

        # All tripped -> None (caller degrades to CPU).
        for _ in range(CONFIG.breaker_failure_threshold):
            policy.record_failure(busy)
        assert policy.pick([busy, idle], now=0.0) is None
        assert policy.open_breakers() == 2

    def test_success_resets_breaker_through_policy(self):
        class FakeAccel:
            input_occupancy = 0

        policy = _policy()
        accel = FakeAccel()
        for _ in range(CONFIG.breaker_failure_threshold):
            policy.record_failure(accel)
        assert policy.open_breakers() == 1
        policy.record_success(accel)
        assert policy.open_breakers() == 0

    def test_stats_surface_all_counters(self):
        policy = _policy()
        stats = policy.stats()
        assert set(stats) == {
            "watchdog_timeouts",
            "step_retries",
            "breaker_trips",
            "open_breakers",
            "degraded_to_cpu",
            "dma_retries",
            "dma_fatal",
            "budget_denials",
            "budget_tokens",
        }
        assert all(value == 0.0 for value in stats.values())

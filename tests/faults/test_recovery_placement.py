"""Recovery x placement interaction contracts.

Two cross-cutting invariants that neither the recovery tests nor the
placement tests pin on their own:

* a circuit breaker opening on a ``pcie``-placed accelerator must not
  let the orchestrator route the same kind's work around the hop — the
  placement is physical, so recovery can wait, retry, or degrade to
  the CPU, but it can never conjure an on-package instance of a kind
  that lives on the card;
* a watchdog timeout during a NIC congestion window is a *recovered*
  event, not a fatal one — congestion stretches crossings past the
  watchdog, the attempt is abandoned and retried (or degraded), and
  the request still completes without error.

``CHAOS_SEED`` rotates the seed in CI.
"""

import os
from typing import List

from repro.faults import FaultConfig
from repro.hw import MachineParams
from repro.hw.placement import Placement
from repro.server import SimulatedServer
from repro.workloads import social_network_services
from repro.workloads.arrivals import make_arrivals

SERVICE = "StoreP"
RATE_RPS = 2000.0
N_REQUESTS = 40
SEED = int(os.environ.get("CHAOS_SEED", "0"))


def _run(placement_overrides, faults, seed=SEED, default="on_package"):
    spec = [s for s in social_network_services() if s.name == SERVICE][0]
    server = SimulatedServer(
        "accelflow",
        machine_params=MachineParams().with_placement(
            default, placement_overrides
        ),
        seed=seed,
        faults=faults,
    )
    env = server.env
    arrivals = make_arrivals(
        "poisson", RATE_RPS, server.streams.stream(f"arrivals/{spec.name}")
    )
    in_flight: List = []

    def source(env):
        for _ in range(N_REQUESTS):
            yield env.timeout(arrivals.next_gap_ns())
            request = server.make_request(spec)
            in_flight.append((request, server.submit(request)))

    src = env.process(source(env))

    def watch(env):
        yield src
        yield env.all_of([process for _, process in in_flight])

    env.run(until=env.process(watch(env)))
    return [r for r, _ in in_flight], server


class TestBreakerRespectsPlacement:
    #: Transients at a rate that trips hair-trigger breakers while
    #: still letting plenty of ops through (at rate 1.0 every breaker
    #: opens before a single transfer lands, which would vacuously
    #: pass the hop assertions below).
    FAULTS = FaultConfig(
        pe_transient_rate=0.3,
        backoff_base_ns=100.0,
        breaker_failure_threshold=2,
        breaker_cooldown_ns=5e6,
    )

    def test_tripped_pcie_breaker_does_not_route_on_package(self):
        """With TCP behind PCIe and its breakers tripped, every TCP op
        that still runs keeps paying the PCIe hop: the hop-crossing
        count keeps growing, and no accelerator of the kind appears
        on-package. Recovery degrades to the CPU instead of teleporting
        the accelerator."""
        requests, server = _run({"tcp": "pcie"}, self.FAULTS)
        recovery = server.orchestrator.recovery
        assert recovery.breaker_trips > 0
        assert all(r.completed for r in requests)
        # The physical contract: the fabric still owns every crossing.
        fabric = server.hardware.fabric
        assert fabric is not None
        assert fabric.hop_transfers[Placement.PCIE] > 0
        # Exhausted retries degrade to the CPU (the only legal escape).
        assert recovery.degraded_to_cpu > 0 or recovery.step_retries > 0

    def test_breaker_routing_stays_within_kind(self):
        """The pick() candidate set never crosses kinds: with every TCP
        instance tripped open, pick() returns None for TCP rather than
        an instance of another kind."""
        _, server = _run({"tcp": "pcie"}, self.FAULTS)
        recovery = server.orchestrator.recovery
        env_now = server.env.now
        from repro.hw.params import AcceleratorKind

        tcp_instances = server.hardware.instances[AcceleratorKind.TCP]
        for accel in tcp_instances:
            recovery.breaker(accel).opened_at = env_now  # force open
        picked = recovery.pick(tcp_instances, env_now)
        assert picked is None  # never an on-package substitute


class TestWatchdogDuringNicCongestion:
    #: Recurring NIC congestion windows (50x crossings). The hop itself
    #: sits between watchdogged steps, so congestion surfaces as queue
    #: pile-up that stretches the next step past a tight watchdog.
    CONGESTION = dict(
        nic_congestion_interval_ns=2e6,
        nic_congestion_ns=3e6,
        nic_congestion_factor=50.0,
        nic_congestion_max=16,
        backoff_base_ns=100.0,
    )

    def test_timeouts_recover_instead_of_failing(self):
        """Tight watchdog + active congestion regime: attempts time out
        repeatedly, and every one is recovered — retried on another
        instance or degraded to the CPU — never surfaced as an error."""
        faults = FaultConfig(watchdog_timeout_ns=5e4, **self.CONGESTION)
        requests, server = _run({}, faults, default="nic")
        recovery = server.orchestrator.recovery
        assert server.fault_plane.nic_congestions > 0
        assert recovery.watchdog_timeouts > 0
        assert recovery.step_retries + recovery.degraded_to_cpu > 0
        assert all(r.completed for r in requests)
        assert not any(r.error for r in requests)

    def test_generous_watchdog_never_fires_under_same_congestion(self):
        """A/B leg: double the watchdog under the identical congestion
        regime and nothing times out — the timeouts above were watchdog
        pressure, not fatal hardware state."""
        faults = FaultConfig(watchdog_timeout_ns=1e5, **self.CONGESTION)
        requests, server = _run({}, faults, default="nic")
        assert server.fault_plane.nic_congestions > 0
        assert server.orchestrator.recovery.watchdog_timeouts == 0
        assert not any(r.error for r in requests)

"""Unit tests for the accelerator model (queues, dispatcher, PEs)."""


import pytest

from repro.hw import (
    AccelOp,
    Accelerator,
    AcceleratorKind,
    Iommu,
    MachineParams,
    QueueEntry,
    QueuePolicy,
    TlbModel,
)
from repro.hw.params import AcceleratorParams, TlbParams
from repro.sim import Environment, RandomStreams


def make_accel(
    env,
    kind=AcceleratorKind.SER,
    policy=QueuePolicy.FIFO,
    pes=8,
    input_entries=64,
    overflow_entries=256,
    miss_p=0.0,
):
    params = MachineParams(
        accelerator=AcceleratorParams(
            pes=pes,
            input_queue_entries=input_entries,
            overflow_entries=overflow_entries,
        ),
        tlb=TlbParams(miss_probability=miss_p, page_fault_probability=0.0),
    )
    iommu = Iommu(env, params.tlb.walk_latency_ns)
    tlb = TlbModel(env, params.tlb, iommu, RandomStreams(0).stream("t"))
    return Accelerator(env, kind, params, tlb, policy=policy)


def make_entry(env, cpu_ns=1000.0, data_in=512, data_out=512, tenant=0, **kwargs):
    op = AccelOp(AcceleratorKind.SER, cpu_ns, data_in, data_out)
    return QueueEntry(env, op, tenant=tenant, **kwargs)


def run_entries(env, accel, entries):
    def proc(env):
        for entry in entries:
            assert accel.try_enqueue(entry)
        for entry in entries:
            yield entry.done

    env.process(proc(env))
    env.run()


class TestAccelOp:
    def test_accel_time_divides_by_speedup(self):
        op = AccelOp(AcceleratorKind.SER, 3800.0, 100, 100)
        assert op.accel_time_ns(3.8) == pytest.approx(1000.0)

    def test_rejects_bad_values(self):
        with pytest.raises(ValueError):
            AccelOp(AcceleratorKind.SER, -1.0, 0, 0)
        with pytest.raises(ValueError):
            AccelOp(AcceleratorKind.SER, 1.0, -5, 0)
        op = AccelOp(AcceleratorKind.SER, 1.0, 0, 0)
        with pytest.raises(ValueError):
            op.accel_time_ns(0.0)


class TestQueueEntry:
    def test_slack_infinite_without_deadline(self):
        env = Environment()
        entry = make_entry(env)
        assert entry.slack_ns(100.0) == float("inf")

    def test_slack_with_deadline(self):
        env = Environment()
        entry = make_entry(env, deadline_ns=500.0)
        assert entry.slack_ns(100.0) == 400.0

    def test_wait_properties_guarded(self):
        env = Environment()
        entry = make_entry(env)
        with pytest.raises(ValueError):
            _ = entry.queue_wait_ns
        with pytest.raises(ValueError):
            _ = entry.service_ns


class TestAcceleratorExecution:
    def test_single_op_completes_with_speedup(self):
        env = Environment()
        accel = make_accel(env)  # Ser: speedup 3.8
        entry = make_entry(env, cpu_ns=3800.0)
        run_entries(env, accel, [entry])
        assert accel.ops_completed == 1
        # Total time = scratchpad in + compute (1000) + scratchpad out.
        assert entry.service_ns > 1000.0
        assert entry.service_ns < 1100.0

    def test_eight_pes_run_in_parallel(self):
        env = Environment()
        accel = make_accel(env, pes=8)
        entries = [make_entry(env, cpu_ns=3800.0) for _ in range(8)]
        run_entries(env, accel, entries)
        # All eight fit on PEs simultaneously: makespan ~ one op.
        assert env.now < 1200.0

    def test_ninth_op_waits_for_free_pe(self):
        env = Environment()
        accel = make_accel(env, pes=8)
        entries = [make_entry(env, cpu_ns=3800.0) for _ in range(9)]
        run_entries(env, accel, entries)
        assert env.now > 2000.0

    def test_pe_count_limits_throughput(self):
        def makespan(pes):
            env = Environment()
            accel = make_accel(env, pes=pes)
            entries = [make_entry(env, cpu_ns=3800.0) for _ in range(16)]
            run_entries(env, accel, entries)
            return env.now

        assert makespan(2) > makespan(4) > makespan(8)

    def test_done_event_carries_entry(self):
        env = Environment()
        accel = make_accel(env)
        entry = make_entry(env)
        results = []

        def proc(env):
            accel.try_enqueue(entry)
            value = yield entry.done
            results.append(value)

        env.process(proc(env))
        env.run()
        assert results == [entry]

    def test_larger_payload_takes_longer(self):
        def service(data_in):
            env = Environment()
            accel = make_accel(env)
            entry = make_entry(env, cpu_ns=1000.0, data_in=data_in)
            run_entries(env, accel, [entry])
            return entry.service_ns

        assert service(8192) > service(512)

    def test_tlb_misses_slow_execution(self):
        def service(miss_p):
            env = Environment()
            accel = make_accel(env, miss_p=miss_p)
            entry = make_entry(env, cpu_ns=1000.0)
            run_entries(env, accel, [entry])
            return entry.service_ns, accel.tlb.misses

        hit_service, hit_misses = service(0.0)
        miss_service, miss_misses = service(1.0)
        assert hit_misses == 0 and miss_misses == 1
        # The page walk adds its 100 ns latency to the operation.
        assert miss_service == pytest.approx(hit_service + 100.0)


class TestTenantIsolation:
    def test_wipe_between_tenants(self):
        env = Environment()
        accel = make_accel(env, pes=1)
        a = make_entry(env, tenant=1)
        b = make_entry(env, tenant=2)
        run_entries(env, accel, [a, b])
        assert accel.tenant_wipes == 1

    def test_no_wipe_same_tenant(self):
        env = Environment()
        accel = make_accel(env, pes=1)
        entries = [make_entry(env, tenant=7) for _ in range(3)]
        run_entries(env, accel, entries)
        assert accel.tenant_wipes == 0


class TestAdmissionAndOverflow:
    def test_overflow_used_when_queue_full(self):
        env = Environment()
        accel = make_accel(env, pes=1, input_entries=2, overflow_entries=4)
        entries = [make_entry(env, cpu_ns=38000.0) for _ in range(5)]
        for entry in entries:
            assert accel.try_enqueue(entry)
        assert accel.overflow_admissions >= 1

        def waiter(env):
            for entry in entries:
                yield entry.done

        env.process(waiter(env))
        env.run()
        assert accel.ops_completed == 5

    def test_rejection_when_everything_full(self):
        env = Environment()
        accel = make_accel(env, pes=1, input_entries=1, overflow_entries=1)
        ok = [accel.try_enqueue(make_entry(env, cpu_ns=38000.0)) for _ in range(5)]
        # Queue (1) + in-dispatch + overflow (1) fill quickly; later
        # enqueues are rejected and counted as CPU fallbacks.
        assert not all(ok)
        assert accel.ops_rejected >= 1

    def test_overflow_entries_eventually_complete_in_order(self):
        env = Environment()
        accel = make_accel(env, pes=1, input_entries=1, overflow_entries=8)
        entries = [make_entry(env, cpu_ns=3800.0) for _ in range(6)]
        run_entries(env, accel, entries)
        completion_times = [entry.complete_time for entry in entries]
        assert completion_times == sorted(completion_times)


class TestQueuePolicies:
    def test_unknown_policy_rejected(self):
        env = Environment()
        with pytest.raises(ValueError):
            make_accel(env, policy="lifo")

    def test_edf_orders_by_deadline(self):
        env = Environment()
        accel = make_accel(env, pes=1, policy=QueuePolicy.EDF)
        blocker = make_entry(env, cpu_ns=38000.0)
        late = make_entry(env, cpu_ns=380.0, deadline_ns=1e9)
        urgent = make_entry(env, cpu_ns=380.0, deadline_ns=100.0)
        run_entries(env, accel, [blocker, late, urgent])
        assert urgent.complete_time < late.complete_time

    def test_priority_policy_orders_by_priority(self):
        env = Environment()
        accel = make_accel(env, pes=1, policy=QueuePolicy.PRIORITY)
        blocker = make_entry(env, cpu_ns=38000.0, priority=0)
        low = make_entry(env, cpu_ns=380.0, priority=9)
        high = make_entry(env, cpu_ns=380.0, priority=1)
        run_entries(env, accel, [blocker, low, high])
        assert high.complete_time < low.complete_time

    def test_edf_counts_deadline_violations(self):
        env = Environment()
        accel = make_accel(env, pes=1, policy=QueuePolicy.EDF)
        blocker = make_entry(env, cpu_ns=380000.0)
        doomed = make_entry(env, cpu_ns=380.0, deadline_ns=10.0)
        run_entries(env, accel, [blocker, doomed])
        assert accel.deadline_violations == 1


class TestStatistics:
    def test_utilization_bounded(self):
        env = Environment()
        accel = make_accel(env)
        entries = [make_entry(env) for _ in range(20)]
        run_entries(env, accel, entries)
        assert 0.0 < accel.utilization() <= 1.0

    def test_stats_keys(self):
        env = Environment()
        accel = make_accel(env)
        run_entries(env, accel, [make_entry(env)])
        stats = accel.stats()
        for key in (
            "ops_completed",
            "ops_rejected",
            "overflow_admissions",
            "tenant_wipes",
            "utilization",
            "mean_queue_wait_ns",
        ):
            assert key in stats
        assert stats["ops_completed"] == 1

"""Unit tests for the ATM, TLB/IOMMU and CPU core pool models."""

import pytest

from repro.hw import AtmFullError, AtmMemory, CorePool, CpuParams, Iommu, TlbModel
from repro.hw.params import AtmParams, TlbParams
from repro.sim import Environment, RandomStreams


class TestAtm:
    def test_store_and_peek(self):
        env = Environment()
        atm = AtmMemory(env)
        addr = atm.store("trace-a")
        assert atm.peek(addr) == "trace-a"
        assert len(atm) == 1
        assert atm.writes == 1

    def test_addresses_unique(self):
        env = Environment()
        atm = AtmMemory(env)
        addrs = {atm.store(i) for i in range(100)}
        assert len(addrs) == 100

    def test_read_pays_latency(self):
        env = Environment()
        atm = AtmMemory(env, AtmParams(read_latency_ns=42.0))
        addr = atm.store("t")

        def proc(env):
            trace = yield env.process(atm.read(addr))
            return (env.now, trace)

        p = env.process(proc(env))
        env.run()
        assert p.value == (42.0, "t")
        assert atm.reads == 1

    def test_read_unknown_address_raises(self):
        env = Environment()
        atm = AtmMemory(env)
        with pytest.raises(KeyError):
            # Generator raises on creation of the process run.
            env.process(atm.read(999))
            env.run()

    def test_capacity_enforced(self):
        env = Environment()
        atm = AtmMemory(env, AtmParams(capacity_traces=2))
        atm.store("a")
        atm.store("b")
        with pytest.raises(AtmFullError):
            atm.store("c")

    def test_free_releases_slot(self):
        env = Environment()
        atm = AtmMemory(env, AtmParams(capacity_traces=1))
        addr = atm.store("a")
        atm.free(addr)
        atm.store("b")  # no AtmFullError


class TestTlb:
    def make_tlb(self, miss_p, fault_p, seed=0):
        env = Environment()
        params = TlbParams(
            miss_probability=miss_p,
            page_fault_probability=fault_p,
            walk_latency_ns=100.0,
            page_fault_service_ns=10000.0,
        )
        iommu = Iommu(env, params.walk_latency_ns)
        tlb = TlbModel(env, params, iommu, RandomStreams(seed).stream("tlb"))
        return env, tlb

    def run_translations(self, env, tlb, n):
        outcomes = []

        def proc(env):
            for _ in range(n):
                outcome = yield env.process(tlb.translate())
                outcomes.append(outcome)

        env.process(proc(env))
        env.run()
        return outcomes

    def test_always_hit_costs_nothing(self):
        env, tlb = self.make_tlb(0.0, 0.0)
        outcomes = self.run_translations(env, tlb, 50)
        assert all(o.hit for o in outcomes)
        assert env.now == 0.0
        assert tlb.miss_rate() == 0.0

    def test_always_miss_pays_walk(self):
        env, tlb = self.make_tlb(1.0, 0.0)
        outcomes = self.run_translations(env, tlb, 10)
        assert all(not o.hit and not o.page_fault for o in outcomes)
        assert env.now == pytest.approx(10 * 100.0)
        assert tlb.miss_rate() == 1.0
        assert tlb.iommu.walks == 10

    def test_page_fault_pays_service(self):
        env, tlb = self.make_tlb(0.0, 1.0)
        outcomes = self.run_translations(env, tlb, 3)
        assert all(o.page_fault for o in outcomes)
        assert env.now == pytest.approx(3 * 10000.0)
        assert tlb.page_faults == 3

    def test_statistical_miss_rate(self):
        env, tlb = self.make_tlb(0.1, 0.0)
        self.run_translations(env, tlb, 5000)
        assert abs(tlb.miss_rate() - 0.1) < 0.02

    def test_stats_keys(self):
        env, tlb = self.make_tlb(0.5, 0.0)
        self.run_translations(env, tlb, 10)
        stats = tlb.stats()
        assert set(stats) == {"accesses", "misses", "page_faults", "miss_rate"}
        assert stats["accesses"] == 10


class TestCorePool:
    def test_execute_holds_core(self):
        env = Environment()
        pool = CorePool(env, CpuParams(cores=1))
        finish = []

        def proc(env, name):
            yield env.process(pool.execute(100.0))
            finish.append((name, env.now))

        env.process(proc(env, "a"))
        env.process(proc(env, "b"))
        env.run()
        assert finish == [("a", 100.0), ("b", 200.0)]

    def test_negative_duration_rejected(self):
        env = Environment()
        pool = CorePool(env, CpuParams(cores=1))
        with pytest.raises(ValueError):
            env.process(pool.execute(-1.0))
            env.run()

    def test_parallel_cores(self):
        env = Environment()
        pool = CorePool(env, CpuParams(cores=4))

        def proc(env):
            yield env.process(pool.execute(100.0))

        for _ in range(4):
            env.process(proc(env))
        env.run()
        assert env.now == 100.0

    def test_interrupt_priority_jumps_queue(self):
        env = Environment()
        pool = CorePool(env, CpuParams(cores=1))
        order = []

        def busy(env):
            yield env.process(pool.execute(100.0))
            order.append("first-app")

        def app(env):
            yield env.timeout(1.0)
            yield env.process(pool.execute(100.0))
            order.append("second-app")

        def irq(env):
            yield env.timeout(2.0)
            yield env.process(pool.handle_interrupt(10.0))
            order.append("irq")

        env.process(busy(env))
        env.process(app(env))
        env.process(irq(env))
        env.run()
        assert order == ["first-app", "irq", "second-app"]
        assert pool.interrupts == 1

    def test_utilization_accounting(self):
        env = Environment()
        pool = CorePool(env, CpuParams(cores=2))

        def proc(env):
            yield env.process(pool.execute(50.0))
            yield env.timeout(50.0)

        env.process(proc(env))
        env.run()
        # 1 core busy for 50 of 100 ns over 2 cores => 25%.
        assert pool.utilization() == pytest.approx(0.25)
        assert pool.busy_ns == pytest.approx(50.0)

    def test_notification_cost_is_80_cycles(self):
        env = Environment()
        pool = CorePool(env, CpuParams())
        assert pool.notification_ns() == pytest.approx(80 / 2.4)

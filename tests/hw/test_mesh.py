"""Tests for the coordinate-level mesh topology (opt-in NoC fidelity)."""

import dataclasses

import pytest

from repro.hw import AcceleratorKind, MachineParams, Network, chiplet_layout
from repro.hw.mesh import PORTAL, MeshTopology, build_chiplet_meshes
from repro.hw.params import NocParams
from repro.sim import Environment

K = AcceleratorKind


class TestMeshTopology:
    def test_places_all_members(self):
        mesh = MeshTopology(["a", "b", "c", "d"])
        for member in ("a", "b", "c", "d", PORTAL):
            coordinate = mesh.coordinate_of(member)
            assert 0 <= coordinate[0] < mesh.side
            assert 0 <= coordinate[1] < mesh.side

    def test_coordinates_unique(self):
        mesh = MeshTopology(list("abcdefgh"))
        coords = [mesh.coordinate_of(m) for m in list("abcdefgh") + [PORTAL]]
        assert len(set(coords)) == len(coords)

    def test_hops_are_manhattan(self):
        mesh = MeshTopology(["a", "b"])
        ax, ay = mesh.coordinate_of("a")
        bx, by = mesh.coordinate_of("b")
        assert mesh.hops("a", "b") == abs(ax - bx) + abs(ay - by)

    def test_hops_symmetric_and_zero_on_self(self):
        mesh = MeshTopology(["a", "b", "c"])
        assert mesh.hops("a", "b") == mesh.hops("b", "a")
        assert mesh.hops("a", "a") == 0

    def test_unknown_member_rejected(self):
        with pytest.raises(KeyError):
            MeshTopology(["a"]).hops("a", "ghost")

    def test_average_hops_reasonable(self):
        mesh = MeshTopology(list(AcceleratorKind)[:8])
        # A 3x3 grid's average pairwise Manhattan distance is ~2.
        assert 1.0 <= mesh.average_hops() <= 4.0


class TestBuildChipletMeshes:
    def test_two_chiplet_layout(self):
        meshes = build_chiplet_meshes(chiplet_layout(2))
        assert set(meshes) == {0, 1}
        assert meshes[0].members == [K.LDB]
        assert len(meshes[1].members) == 8

    def test_six_chiplet_layout(self):
        meshes = build_chiplet_meshes(chiplet_layout(6))
        assert set(meshes) == {0, 1, 2, 3, 4, 5}
        assert meshes[1].members == [K.TCP]


class TestDetailedNetwork:
    def make(self, detailed):
        env = Environment()
        params = dataclasses.replace(
            MachineParams(), noc=NocParams(detailed_mesh=detailed)
        )
        return env, Network(env, params)

    def test_detailed_distances_vary_by_pair(self):
        _, net = self.make(detailed=True)
        estimates = {
            (a, b): net.estimate_ns(a, b, 64)
            for a in (K.TCP, K.SER)
            for b in (K.ENCR, K.CMP)
        }
        assert len(set(estimates.values())) > 1  # not one flat latency

    def test_default_model_is_flat(self):
        _, net = self.make(detailed=False)
        a = net.estimate_ns(K.TCP, K.ENCR, 64)
        b = net.estimate_ns(K.SER, K.CMP, 64)
        assert a == pytest.approx(b)

    def test_detailed_close_to_average_model(self):
        """Opting in must not change latencies wholesale: the mean over
        pairs stays within ~2x of the calibrated average model."""
        _, flat = self.make(detailed=False)
        _, detailed = self.make(detailed=True)
        kinds = [k for k in K if k is not K.LDB]
        pairs = [(a, b) for a in kinds for b in kinds if a is not b]
        flat_mean = sum(flat.estimate_ns(a, b, 256) for a, b in pairs) / len(pairs)
        detailed_mean = sum(
            detailed.estimate_ns(a, b, 256) for a, b in pairs
        ) / len(pairs)
        assert detailed_mean == pytest.approx(flat_mean, rel=1.0)

    def test_transfer_runs_with_detailed_mesh(self):
        env, net = self.make(detailed=True)

        def proc(env):
            yield env.process(net.transfer(K.TCP, "cpu", 512))
            yield env.process(net.transfer(K.SER, K.CMP, 512))

        env.process(proc(env))
        env.run()
        assert net.stats()["bytes_moved"] == 1024

    def test_end_to_end_request_with_detailed_mesh(self):
        from repro.server import SimulatedServer
        from repro.workloads import social_network_services

        params = dataclasses.replace(
            MachineParams(), noc=NocParams(detailed_mesh=True)
        )
        server = SimulatedServer("accelflow", machine_params=params)
        spec = social_network_services()[6]  # UniqId
        request = server.make_request(spec)
        server.env.run(until=server.submit(request))
        assert request.completed

"""Tests for multi-instance accelerator support (Section IV-A: "one or
more instances of all the accelerators")."""


from repro.hw import AccelOp, AcceleratorKind, MachineParams, QueueEntry, ServerHardware
from repro.hw.params import AcceleratorParams
from repro.server import SimulatedServer
from repro.sim import Environment, RandomStreams
from repro.workloads import social_network_services

K = AcceleratorKind
SERVICES = {s.name: s for s in social_network_services()}


def make_hardware(instances=2, **accel_kwargs):
    env = Environment()
    params = MachineParams(
        accelerator=AcceleratorParams(instances=instances, **accel_kwargs)
    )
    return env, ServerHardware(env, params, RandomStreams(0))


class TestInstancePools:
    def test_default_is_single_instance(self):
        env, hardware = make_hardware(instances=1)
        for kind in K:
            assert len(hardware.instances[kind]) == 1

    def test_requested_instance_count(self):
        env, hardware = make_hardware(instances=3)
        for kind in K:
            assert len(hardware.instances[kind]) == 3
        assert len(hardware.all_accelerators()) == 3 * len(list(K))

    def test_accel_returns_least_occupied(self):
        env, hardware = make_hardware(instances=2)
        first, second = hardware.instances[K.SER]
        op = AccelOp(K.SER, 1000.0, 64, 64)
        # Load up the first instance directly.
        first.try_enqueue(QueueEntry(env, op))
        first.try_enqueue(QueueEntry(env, op))
        assert hardware.accel(K.SER) is second

    def test_stats_aggregate_instances(self):
        env, hardware = make_hardware(instances=2)
        stats = hardware.stats()["accelerators"]["TCP"]
        assert stats["instances"] == 2.0


class TestMultiInstanceExecution:
    def test_requests_complete_with_instances(self):
        server = SimulatedServer(
            "accelflow", machine_params=MachineParams().with_instances(2)
        )
        spec = SERVICES["StoreP"]
        requests = [server.make_request(spec) for _ in range(6)]
        procs = [server.submit(r) for r in requests]
        server.env.run(until=server.env.all_of(procs))
        assert all(r.completed for r in requests)

    def test_work_spreads_across_instances(self):
        server = SimulatedServer(
            "accelflow", machine_params=MachineParams().with_instances(2)
        )
        spec = SERVICES["CPost"]  # heavily parallel: both instances used
        requests = [server.make_request(spec) for _ in range(6)]
        procs = [server.submit(r) for r in requests]
        server.env.run(until=server.env.all_of(procs))
        busy = [a.ops_completed for a in server.hardware.instances[K.TCP]]
        assert all(count > 0 for count in busy)

    def test_instances_relieve_tiny_queues(self):
        """With 1-entry queues, a second instance absorbs the overflow
        that would otherwise force CPU fallback."""

        def fallbacks(instances):
            params = MachineParams(
                accelerator=AcceleratorParams(
                    pes=1, input_queue_entries=1, overflow_entries=1,
                    instances=instances,
                )
            )
            server = SimulatedServer("accelflow", machine_params=params)
            spec = SERVICES["CPost"]
            requests = [server.make_request(spec) for _ in range(4)]
            procs = [server.submit(r) for r in requests]
            server.env.run(until=server.env.all_of(procs))
            return server.orchestrator.fallbacks

        assert fallbacks(instances=4) <= fallbacks(instances=1)

    def test_relief_retire_hooks_cover_all_instances(self):
        server = SimulatedServer(
            "relief", machine_params=MachineParams().with_instances(2)
        )
        for accel in server.hardware.all_accelerators():
            assert accel.retire_hook is not None

"""Unit tests for the network and DMA models."""

import pytest

from repro.hw import (
    CPU_ENDPOINT,
    MEMORY_ENDPOINT,
    AcceleratorKind,
    DmaPool,
    MachineParams,
    Network,
)
from repro.sim import Environment


def make_network(chiplets=2):
    env = Environment()
    params = MachineParams().with_layout(chiplets)
    return env, Network(env, params)


class TestNetworkTopology:
    def test_cpu_and_memory_on_chiplet_zero(self):
        _, net = make_network()
        assert net.chiplet_of(CPU_ENDPOINT) == 0
        assert net.chiplet_of(MEMORY_ENDPOINT) == 0

    def test_crosses_chiplets(self):
        _, net = make_network(2)
        assert net.crosses_chiplets(CPU_ENDPOINT, AcceleratorKind.TCP)
        assert not net.crosses_chiplets(AcceleratorKind.TCP, AcceleratorKind.SER)
        assert not net.crosses_chiplets(CPU_ENDPOINT, AcceleratorKind.LDB)

    def test_single_chiplet_never_crosses(self):
        _, net = make_network(1)
        assert not net.crosses_chiplets(CPU_ENDPOINT, AcceleratorKind.TCP)


class TestNetworkTiming:
    def test_intra_chiplet_cheaper_than_inter(self):
        _, net = make_network(2)
        intra = net.estimate_ns(AcceleratorKind.TCP, AcceleratorKind.SER, 1024)
        inter = net.estimate_ns(AcceleratorKind.TCP, AcceleratorKind.LDB, 1024)
        assert inter > intra

    def test_estimate_grows_with_size(self):
        _, net = make_network(2)
        small = net.estimate_ns(AcceleratorKind.TCP, AcceleratorKind.SER, 64)
        large = net.estimate_ns(AcceleratorKind.TCP, AcceleratorKind.SER, 8192)
        assert large > small

    def test_transfer_process_matches_estimate_uncontended(self):
        env, net = make_network(2)

        def proc(env):
            yield env.process(
                net.transfer(AcceleratorKind.TCP, AcceleratorKind.LDB, 2048)
            )
            return env.now

        p = env.process(proc(env))
        env.run()
        estimate = net.estimate_ns(AcceleratorKind.TCP, AcceleratorKind.LDB, 2048)
        assert p.value == pytest.approx(estimate, rel=0.01)

    def test_transfer_counts_stats(self):
        env, net = make_network(2)

        def proc(env):
            yield env.process(
                net.transfer(AcceleratorKind.TCP, AcceleratorKind.SER, 100)
            )
            yield env.process(net.transfer(AcceleratorKind.TCP, CPU_ENDPOINT, 100))

        env.process(proc(env))
        env.run()
        stats = net.stats()
        assert stats["intra_chiplet_transfers"] == 1
        assert stats["inter_chiplet_transfers"] == 1
        assert stats["bytes_moved"] == 200

    def test_higher_inter_chiplet_latency_slows_transfer(self):
        env1 = Environment()
        net1 = Network(env1, MachineParams().with_inter_chiplet_cycles(20.0))
        env2 = Environment()
        net2 = Network(env2, MachineParams().with_inter_chiplet_cycles(100.0))
        fast = net1.estimate_ns(AcceleratorKind.TCP, CPU_ENDPOINT, 1024)
        slow = net2.estimate_ns(AcceleratorKind.TCP, CPU_ENDPOINT, 1024)
        assert slow > fast

    def test_fabric_contention_serializes(self):
        env, net = make_network(2)
        parallelism = net.noc.mesh_parallelism
        finish_times = []

        def transfer(env):
            yield env.process(
                net.transfer(AcceleratorKind.TCP, AcceleratorKind.SER, 16)
            )
            finish_times.append(env.now)

        for _ in range(parallelism + 1):
            env.process(transfer(env))
        env.run()
        single = net.estimate_ns(AcceleratorKind.TCP, AcceleratorKind.SER, 16)
        # The first `parallelism` finish together; the extra one waits.
        assert sorted(finish_times)[-1] == pytest.approx(2 * single, rel=0.01)


class TestDmaPool:
    def test_engines_must_be_positive(self):
        env, net = make_network()
        with pytest.raises(ValueError):
            DmaPool(env, net, engines=0)

    def test_transfer_moves_bytes(self):
        env, net = make_network()
        dma = DmaPool(env, net, engines=10)

        def proc(env):
            yield env.process(
                dma.transfer(AcceleratorKind.TCP, AcceleratorKind.SER, 512)
            )

        env.process(proc(env))
        env.run()
        assert dma.transfers == 1
        assert dma.bytes_moved == 512

    def test_pool_limits_concurrency(self):
        env, net = make_network()
        dma = DmaPool(env, net, engines=2)
        finish = []

        def proc(env):
            yield env.process(
                dma.transfer(AcceleratorKind.TCP, AcceleratorKind.SER, 16)
            )
            finish.append(env.now)

        for _ in range(4):
            env.process(proc(env))
        env.run()
        # Two waves: 2 engines for 4 transfers.
        assert len(set(round(t, 3) for t in finish)) == 2

    def test_utilization_between_zero_and_one(self):
        env, net = make_network()
        dma = DmaPool(env, net, engines=10)

        def proc(env):
            yield env.process(
                dma.transfer(AcceleratorKind.TCP, AcceleratorKind.SER, 2048)
            )
            yield env.timeout(1000.0)

        env.process(proc(env))
        env.run()
        assert 0.0 <= dma.utilization() <= 1.0


class TestHopMath:
    """Direct coverage of the estimate_ns/_pair_hops arithmetic."""

    def test_pair_hops_defaults_to_avg(self):
        _, net = make_network(2)
        assert net._pair_hops(AcceleratorKind.TCP, AcceleratorKind.SER) == (
            net.noc.mesh_avg_hops
        )

    def test_intra_estimate_is_closed_form(self):
        _, net = make_network(2)
        noc = net.noc
        hops = net._pair_hops(AcceleratorKind.TCP, AcceleratorKind.SER)
        expected = noc.mesh_latency_ns(hops, net.ghz) + noc.mesh_serialization_ns(
            4096, net.ghz
        )
        assert net.estimate_ns(
            AcceleratorKind.TCP, AcceleratorKind.SER, 4096
        ) == pytest.approx(expected)

    def test_inter_estimate_is_closed_form(self):
        _, net = make_network(2)
        noc = net.noc
        src, dst, nbytes = AcceleratorKind.TCP, AcceleratorKind.LDB, 4096
        src_chip, dst_chip = net.chiplet_of(src), net.chiplet_of(dst)
        assert src_chip != dst_chip
        expected = (
            noc.mesh_latency_ns(net._hops(src_chip, src), net.ghz)
            + noc.mesh_serialization_ns(nbytes, net.ghz)
            + noc.inter_chiplet_latency_ns(net.ghz)
            + noc.inter_chiplet_serialization_ns(nbytes)
            + noc.mesh_latency_ns(net._hops(dst_chip, dst), net.ghz)
        )
        assert net.estimate_ns(src, dst, nbytes) == pytest.approx(expected)

    def test_estimate_symmetric_between_endpoints(self):
        _, net = make_network(2)
        forward = net.estimate_ns(AcceleratorKind.TCP, AcceleratorKind.LDB, 1024)
        reverse = net.estimate_ns(AcceleratorKind.LDB, AcceleratorKind.TCP, 1024)
        assert forward == pytest.approx(reverse)

    def test_detailed_mesh_pair_hops(self):
        from dataclasses import replace

        env = Environment()
        params = MachineParams().with_layout(2)
        params = replace(params, noc=replace(params.noc, detailed_mesh=True))
        net = Network(env, params)
        hops = net._pair_hops(AcceleratorKind.TCP, AcceleratorKind.SER)
        # Real placed coordinates: an integer Manhattan distance, and
        # never the zero that would make a transfer free.
        assert hops >= 1.0
        assert hops == float(int(hops))
        assert hops == net._pair_hops(AcceleratorKind.SER, AcceleratorKind.TCP)

    def test_detailed_mesh_cpu_maps_to_portal(self):
        from dataclasses import replace

        from repro.hw.mesh import PORTAL

        env = Environment()
        params = MachineParams().with_layout(2)
        params = replace(params, noc=replace(params.noc, detailed_mesh=True))
        net = Network(env, params)
        mesh = net._meshes[0]
        expected = float(mesh.hops(AcceleratorKind.LDB, PORTAL)) or 1.0
        assert net._pair_hops(CPU_ENDPOINT, AcceleratorKind.LDB) == expected
        assert net._pair_hops(MEMORY_ENDPOINT, AcceleratorKind.LDB) == expected

"""Unit tests for architectural parameters."""

import pytest

from repro.hw import (
    ACCEL_KINDS,
    DEFAULT_SPEEDUPS,
    AcceleratorKind,
    AcceleratorParams,
    MachineParams,
    NocParams,
    PROCESSOR_GENERATIONS,
    chiplet_layout,
    cycles_to_ns,
)


def test_nine_accelerator_kinds():
    assert len(ACCEL_KINDS) == 9
    names = {kind.value for kind in ACCEL_KINDS}
    assert names == {"TCP", "Encr", "Decr", "RPC", "Ser", "Dser", "Cmp", "Dcmp", "LdB"}


def test_cycles_to_ns_at_default_clock():
    # 2.4 GHz: 60 cycles = 25 ns (paper's inter-chiplet latency).
    assert cycles_to_ns(60.0) == pytest.approx(25.0)
    assert cycles_to_ns(80.0) == pytest.approx(33.333, rel=1e-3)


def test_default_speedups_match_paper():
    assert DEFAULT_SPEEDUPS[AcceleratorKind.TCP] == 3.5
    assert DEFAULT_SPEEDUPS[AcceleratorKind.ENCR] == 6.6
    assert DEFAULT_SPEEDUPS[AcceleratorKind.RPC] == 20.5
    assert DEFAULT_SPEEDUPS[AcceleratorKind.SER] == 3.8
    assert DEFAULT_SPEEDUPS[AcceleratorKind.CMP] == 15.2
    assert DEFAULT_SPEEDUPS[AcceleratorKind.DCMP] == 4.1
    assert DEFAULT_SPEEDUPS[AcceleratorKind.LDB] == 8.1


class TestAcceleratorParams:
    def test_paper_defaults(self):
        params = AcceleratorParams()
        assert params.pes == 8
        assert params.input_queue_entries == 64
        assert params.output_queue_entries == 64
        assert params.scratchpad_kb == 64
        assert params.inline_data_bytes == 2048

    def test_scratchpad_transfer_small_payload(self):
        params = AcceleratorParams()
        # 10 ns latency + 1KB at 100 GB/s (= 100 B/ns) = 10 + 10.24 ns.
        assert params.scratchpad_transfer_ns(1024) == pytest.approx(20.24)

    def test_scratchpad_transfer_caps_at_inline(self):
        params = AcceleratorParams()
        assert params.scratchpad_transfer_ns(64 * 1024) == pytest.approx(
            10.0 + 2048 / 100.0
        )

    def test_memory_fetch_zero_when_inline(self):
        params = AcceleratorParams()
        assert params.memory_fetch_ns(2048) == 0.0

    def test_memory_fetch_charges_spill(self):
        params = AcceleratorParams()
        cost = params.memory_fetch_ns(4096)
        assert cost == pytest.approx(15.0 + 2048 / 50.0)


class TestNocParams:
    def test_mesh_latency(self):
        noc = NocParams()
        # 3 hops * 3 cycles at 2.4 GHz = 3.75 ns.
        assert noc.mesh_latency_ns(3.0) == pytest.approx(3.75)

    def test_mesh_serialization_rounds_up_flits(self):
        noc = NocParams()
        one_flit = noc.mesh_serialization_ns(1)
        assert one_flit == noc.mesh_serialization_ns(16)
        assert noc.mesh_serialization_ns(17) > one_flit

    def test_inter_chiplet_latency_is_60_cycles(self):
        noc = NocParams()
        assert noc.inter_chiplet_latency_ns() == pytest.approx(25.0)


class TestChipletLayouts:
    def test_all_paper_layouts_exist(self):
        for count in (1, 2, 3, 4, 6):
            layout = chiplet_layout(count)
            assert layout.chiplet_count == count

    def test_unknown_layout_rejected(self):
        with pytest.raises(ValueError):
            chiplet_layout(5)

    def test_ldb_always_on_core_chiplet(self):
        for count in (1, 2, 3, 4, 6):
            assert chiplet_layout(count).chiplet_of(AcceleratorKind.LDB) == 0

    def test_base_layout_separates_cores_and_accels(self):
        layout = chiplet_layout(2)
        assert layout.chiplet_of(AcceleratorKind.TCP) == 1
        assert not layout.same_chiplet(AcceleratorKind.LDB, AcceleratorKind.TCP)
        assert layout.same_chiplet(AcceleratorKind.TCP, AcceleratorKind.CMP)

    def test_six_chiplet_layout_splits_groups(self):
        layout = chiplet_layout(6)
        assert not layout.same_chiplet(AcceleratorKind.TCP, AcceleratorKind.ENCR)
        assert layout.same_chiplet(AcceleratorKind.ENCR, AcceleratorKind.DECR)
        assert layout.same_chiplet(AcceleratorKind.SER, AcceleratorKind.DSER)


class TestProcessorGenerations:
    def test_five_generations(self):
        assert set(PROCESSOR_GENERATIONS) == {
            "haswell",
            "skylake",
            "icelake",
            "sapphire-rapids",
            "emerald-rapids",
        }

    def test_icelake_is_baseline(self):
        gen = PROCESSOR_GENERATIONS["icelake"]
        assert gen.app_logic_scale == 1.0
        assert gen.tax_scale == 1.0

    def test_newer_generations_help_app_logic_more_than_tax(self):
        order = ["haswell", "skylake", "icelake", "sapphire-rapids", "emerald-rapids"]
        for older, newer in zip(order, order[1:]):
            old_gen = PROCESSOR_GENERATIONS[older]
            new_gen = PROCESSOR_GENERATIONS[newer]
            assert new_gen.app_logic_scale < old_gen.app_logic_scale
            assert new_gen.tax_scale <= old_gen.tax_scale
        for gen in PROCESSOR_GENERATIONS.values():
            # Tax code benefits less from wide cores than app logic.
            assert abs(gen.tax_scale - 1.0) <= abs(gen.app_logic_scale - 1.0)


class TestMachineParams:
    def test_defaults(self):
        params = MachineParams()
        assert params.cpu.cores == 36
        assert params.dma_engines == 10
        assert params.layout.chiplet_count == 2
        assert params.speedup_scale == 1.0

    def test_speedup_of_applies_scale(self):
        params = MachineParams().with_speedup_scale(2.0)
        assert params.speedup_of(AcceleratorKind.TCP) == pytest.approx(7.0)

    def test_with_pes(self):
        params = MachineParams().with_pes(4)
        assert params.accelerator.pes == 4
        assert MachineParams().accelerator.pes == 8  # original untouched

    def test_with_layout_and_generation(self):
        params = MachineParams().with_layout(6).with_generation("haswell")
        assert params.layout.chiplet_count == 6
        assert params.generation.name == "haswell"

    def test_with_inter_chiplet_cycles(self):
        params = MachineParams().with_inter_chiplet_cycles(100.0)
        assert params.noc.inter_chiplet_cycles == 100.0

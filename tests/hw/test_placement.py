"""Unit tests for the placement fabric (hop models, config, transport)."""

import pytest

from repro.hw import (
    DEFAULT_HOP_MODELS,
    PLACEMENTS,
    AcceleratorKind,
    HopModel,
    MachineParams,
    Network,
    Placement,
    PlacementConfig,
    PlacementFabric,
)
from repro.hw.noc import CPU_ENDPOINT, MEMORY_ENDPOINT
from repro.sim import Environment


def make_fabric(default="pcie", overrides=None, **kwargs):
    env = Environment()
    network = Network(env, MachineParams().with_layout(2))
    config = PlacementConfig.build(default, overrides, **kwargs)
    return env, network, PlacementFabric(env, config, network)


def run_transfer(env, fabric, src, dst, nbytes):
    def proc(env):
        yield env.process(fabric.transfer(src, dst, nbytes))
        return env.now

    p = env.process(proc(env))
    env.run()
    return p.value


class TestHopModel:
    def test_serialization_rounds_up_to_quanta(self):
        hop = HopModel(setup_ns=100.0, gbps=10.0, quantum_bytes=512)
        # 1 byte still ships a whole quantum; 513 bytes ship two.
        assert hop.serialization_ns(1) == pytest.approx(51.2)
        assert hop.serialization_ns(512) == pytest.approx(51.2)
        assert hop.serialization_ns(513) == pytest.approx(102.4)

    def test_crossing_adds_setup(self):
        hop = HopModel(setup_ns=100.0, gbps=10.0, quantum_bytes=512)
        assert hop.crossing_ns(512) == pytest.approx(100.0 + 51.2)

    def test_validate_rejects_bad_fields(self):
        for bad in (
            HopModel(setup_ns=-1.0, gbps=10.0),
            HopModel(setup_ns=0.0, gbps=0.0),
            HopModel(setup_ns=0.0, gbps=10.0, quantum_bytes=0),
            HopModel(setup_ns=0.0, gbps=10.0, lanes=0),
        ):
            with pytest.raises(ValueError):
                bad.validate()

    def test_default_models_cover_all_off_package_placements(self):
        assert set(DEFAULT_HOP_MODELS) == set(PLACEMENTS) - {
            Placement.ON_PACKAGE
        }
        # Sanity of the literature flavouring: the further from the
        # cores, the larger the per-crossing setup.
        assert (
            DEFAULT_HOP_MODELS[Placement.NEAR_CACHE].setup_ns
            < DEFAULT_HOP_MODELS[Placement.PCIE].setup_ns
            < DEFAULT_HOP_MODELS[Placement.NIC].setup_ns
            < DEFAULT_HOP_MODELS[Placement.REMOTE].setup_ns
        )


class TestPlacementConfig:
    def test_build_accepts_strings(self):
        config = PlacementConfig.build("pcie", {"tcp": "nic"})
        assert config.default is Placement.PCIE
        assert config.placement_of(AcceleratorKind.TCP) is Placement.NIC
        assert config.placement_of(AcceleratorKind.SER) is Placement.PCIE

    def test_unknown_placement_rejected(self):
        with pytest.raises(ValueError, match="unknown placement"):
            PlacementConfig.build("underwater")

    def test_default_config_is_inactive(self):
        assert not PlacementConfig.build("on_package").active
        assert not PlacementConfig().active

    def test_any_off_package_kind_activates(self):
        assert PlacementConfig.build("pcie").active
        assert PlacementConfig.build(
            "on_package", {"tcp": "nic"}
        ).active

    def test_force_fabric_activates_without_moving_anything(self):
        config = PlacementConfig.build("on_package", force_fabric=True)
        assert config.active
        assert not config.placements_in_use()

    def test_placements_in_use_counts_kinds(self):
        config = PlacementConfig.build("on_package", {"tcp": "nic", "ser": "nic"})
        assert config.placements_in_use() == {Placement.NIC: 2}

    def test_validate_rejects_on_package_hop_model(self):
        config = PlacementConfig.build(
            "pcie",
            hop_models={Placement.ON_PACKAGE: HopModel(1.0, 1.0)},
        )
        with pytest.raises(ValueError, match="on_package needs no hop model"):
            config.validate()

    def test_validate_requires_model_for_used_placement(self):
        config = PlacementConfig(
            default=Placement.PCIE,
            hop_models={Placement.NIC: DEFAULT_HOP_MODELS[Placement.NIC]},
        )
        with pytest.raises(ValueError, match="no hop model"):
            config.validate()


class TestFabricTransport:
    def test_cpu_and_memory_are_always_on_package(self):
        _, _, fabric = make_fabric("remote")
        assert fabric.placement_of(CPU_ENDPOINT) is Placement.ON_PACKAGE
        assert fabric.placement_of(MEMORY_ENDPOINT) is Placement.ON_PACKAGE
        assert fabric.placement_of(AcceleratorKind.TCP) is Placement.REMOTE

    def test_transfer_matches_estimate_uncontended(self):
        env, _, fabric = make_fabric("pcie")
        elapsed = run_transfer(env, fabric, CPU_ENDPOINT, AcceleratorKind.TCP, 2048)
        estimate = fabric.estimate_ns(CPU_ENDPOINT, AcceleratorKind.TCP, 2048)
        assert elapsed == pytest.approx(estimate, rel=0.01)

    def test_crossing_adds_hop_on_top_of_noc(self):
        env, network, fabric = make_fabric("pcie")
        hop = DEFAULT_HOP_MODELS[Placement.PCIE]
        noc_only = network.estimate_ns(CPU_ENDPOINT, MEMORY_ENDPOINT, 2048)
        with_hop = fabric.estimate_ns(CPU_ENDPOINT, AcceleratorKind.TCP, 2048)
        assert with_hop == pytest.approx(noc_only + hop.crossing_ns(2048))

    def test_on_package_pairs_ride_the_noc_unchanged(self):
        env, network, fabric = make_fabric(
            "on_package", {"tcp": "pcie"}
        )
        elapsed = run_transfer(
            env, fabric, AcceleratorKind.LDB, CPU_ENDPOINT, 4096
        )
        assert elapsed == pytest.approx(
            network.estimate_ns(AcceleratorKind.LDB, CPU_ENDPOINT, 4096),
            rel=0.01,
        )
        assert fabric.hop_transfers == {Placement.PCIE: 0}

    def test_same_site_transfer_costs_the_noc_not_the_hop(self):
        env, network, fabric = make_fabric("nic")
        elapsed = run_transfer(
            env, fabric, AcceleratorKind.TCP, AcceleratorKind.SER, 4096
        )
        assert elapsed == pytest.approx(
            network.estimate_ns(AcceleratorKind.TCP, AcceleratorKind.SER, 4096),
            rel=0.01,
        )
        assert fabric.local_site_transfers == 1
        assert fabric.hop_transfers[Placement.NIC] == 0

    def test_site_to_site_pays_both_crossings(self):
        env, network, fabric = make_fabric("pcie", {"tcp": "nic"})
        pcie = DEFAULT_HOP_MODELS[Placement.PCIE]
        nic = DEFAULT_HOP_MODELS[Placement.NIC]
        nbytes = 1024
        expected = (
            pcie.crossing_ns(nbytes)
            + network.estimate_ns(MEMORY_ENDPOINT, MEMORY_ENDPOINT, nbytes)
            + nic.crossing_ns(nbytes)
        )
        elapsed = run_transfer(
            env, fabric, AcceleratorKind.SER, AcceleratorKind.TCP, nbytes
        )
        assert elapsed == pytest.approx(expected, rel=0.01)
        assert fabric.hop_transfers[Placement.PCIE] == 1
        assert fabric.hop_transfers[Placement.NIC] == 1

    def test_lane_contention_serializes_crossings(self):
        hop = HopModel(setup_ns=1000.0, gbps=100.0, quantum_bytes=64, lanes=2)
        env, _, fabric = make_fabric(
            "pcie", hop_models={Placement.PCIE: hop}
        )
        finish = []

        def transfer(env):
            yield env.process(
                fabric.transfer(CPU_ENDPOINT, AcceleratorKind.TCP, 64)
            )
            finish.append(env.now)

        for _ in range(4):
            env.process(transfer(env))
        env.run()
        # 2 lanes for 4 crossings: the second wave waits a full leg.
        assert len(set(round(t, 3) for t in finish)) == 2

    def test_stats_embed_noc_and_hop_counters(self):
        env, _, fabric = make_fabric("pcie")
        run_transfer(env, fabric, CPU_ENDPOINT, AcceleratorKind.TCP, 512)
        stats = fabric.stats()
        assert stats["hops"]["pcie"]["transfers"] == 1.0
        assert stats["hops"]["pcie"]["bytes"] == 512.0
        assert "bytes_moved" in stats  # the embedded NoC stats
        assert stats["local_site_transfers"] == 0.0


class TestMachineIntegration:
    def test_with_placement_threads_through(self):
        params = MachineParams().with_placement("nic", {"tcp": "on_package"})
        assert params.placement.default is Placement.NIC
        assert (
            params.placement.placement_of(AcceleratorKind.TCP)
            is Placement.ON_PACKAGE
        )

    def test_on_package_config_installs_no_fabric(self):
        from repro.server import SimulatedServer

        server = SimulatedServer(
            "accelflow",
            machine_params=MachineParams().with_placement("on_package"),
        )
        assert server.hardware.fabric is None

    def test_off_package_config_installs_fabric(self):
        from repro.server import SimulatedServer

        server = SimulatedServer(
            "accelflow",
            machine_params=MachineParams().with_placement("pcie"),
        )
        fabric = server.hardware.fabric
        assert fabric is not None
        assert server.hardware.dma.network is fabric

    def test_on_package_run_byte_identical_to_default(self):
        """The whole acceptance contract in one test: an explicit
        all-on-package placement must not move a single sample."""
        from repro.server import RunConfig, run_experiment
        from repro.workloads import social_network_services

        spec = [s for s in social_network_services() if s.name == "UniqId"]
        base = dict(
            requests_per_service=40,
            seed=3,
            arrival_mode="poisson",
            rate_rps=20000.0,
        )
        plain = run_experiment([spec[0]], RunConfig("accelflow", **base))
        placed = run_experiment(
            [spec[0]],
            RunConfig(
                "accelflow",
                machine_params=MachineParams().with_placement("on_package"),
                **base,
            ),
        )
        assert (
            plain.services["UniqId"].recorder.samples
            == placed.services["UniqId"].recorder.samples
        )
        assert plain.elapsed_ns == placed.elapsed_ns
        assert repr(plain.hardware_stats) == repr(placed.hardware_stats)

    def test_forced_fabric_passthrough_is_timing_identical(self):
        """force_fabric installs the layer with everything on-package:
        samples must still match the fabric-free run exactly (the stats
        shape grows, the simulation must not)."""
        from repro.server import RunConfig, run_experiment
        from repro.workloads import social_network_services

        spec = [s for s in social_network_services() if s.name == "UniqId"]
        base = dict(
            requests_per_service=40,
            seed=3,
            arrival_mode="poisson",
            rate_rps=20000.0,
        )
        plain = run_experiment([spec[0]], RunConfig("accelflow", **base))
        forced = run_experiment(
            [spec[0]],
            RunConfig(
                "accelflow",
                machine_params=MachineParams().with_placement(
                    "on_package", force_fabric=True
                ),
                **base,
            ),
        )
        assert (
            plain.services["UniqId"].recorder.samples
            == forced.services["UniqId"].recorder.samples
        )
        assert plain.elapsed_ns == forced.elapsed_ns

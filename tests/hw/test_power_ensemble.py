"""Unit tests for the power model and the assembled server hardware."""

import pytest

from repro.hw import (
    ACCEL_KINDS,
    AccelOp,
    AcceleratorKind,
    AreaModel,
    EnergyModel,
    MachineParams,
    QueueEntry,
    ServerHardware,
)
from repro.sim import Environment, RandomStreams


class TestAreaModel:
    def test_baseline_matches_paper(self):
        area = AreaModel()
        assert area.baseline_mm2 == pytest.approx(122.3)

    def test_orchestration_area(self):
        area = AreaModel()
        assert area.orchestration_mm2 == pytest.approx(3.4 + 1.3 + 0.4)

    def test_accelerator_fraction_near_paper(self):
        # Paper: accelerators ~26.1% of total area.
        assert AreaModel().accelerator_fraction() == pytest.approx(0.261, abs=0.02)

    def test_accelflow_overhead_near_paper(self):
        # Paper: AccelFlow structures at most 2.9% of the SoC.
        assert AreaModel().accelflow_overhead_fraction() == pytest.approx(
            0.029, abs=0.005
        )

    def test_breakdown_sums_to_total(self):
        area = AreaModel()
        breakdown = area.breakdown()
        parts = sum(v for k, v in breakdown.items() if k != "total")
        assert parts == pytest.approx(breakdown["total"])


class TestEnergyModel:
    def test_accel_power_sums_to_budget(self):
        model = EnergyModel()
        assert sum(model.accel_max_w.values()) == pytest.approx(12.5)

    def test_core_energy_monotone_in_busy_time(self):
        model = EnergyModel()
        low = model.core_energy_j(36, 1e9, busy_ns=1e9)
        high = model.core_energy_j(36, 1e9, busy_ns=30e9)
        assert high > low

    def test_core_energy_zero_elapsed(self):
        assert EnergyModel().core_energy_j(36, 0.0, 0.0) == 0.0

    def test_accel_energy_idle_below_active(self):
        model = EnergyModel()
        idle = model.accel_energy_j(AcceleratorKind.CMP, 1e9, 0.0, 8)
        active = model.accel_energy_j(AcceleratorKind.CMP, 1e9, 8e9, 8)
        assert 0 < idle < active

    def test_performance_per_watt_positive(self):
        model = EnergyModel()
        ppw = model.performance_per_watt(1000, 1e9, 10.0)
        assert ppw > 0

    def test_performance_per_watt_degenerate(self):
        model = EnergyModel()
        assert model.performance_per_watt(0, 0.0, 0.0) == 0.0


class TestServerHardware:
    def make_server(self):
        env = Environment()
        server = ServerHardware(env, MachineParams(), RandomStreams(0))
        return env, server

    def test_all_nine_accelerators_present(self):
        _, server = self.make_server()
        assert set(server.accelerators) == set(ACCEL_KINDS)

    def test_iommu_per_chiplet(self):
        _, server = self.make_server()
        assert set(server.iommus) == {0, 1}

    def test_accel_lookup(self):
        _, server = self.make_server()
        accel = server.accel(AcceleratorKind.TCP)
        assert accel.kind == AcceleratorKind.TCP
        assert accel.speedup == pytest.approx(3.5)

    def test_end_to_end_op_execution(self):
        env, server = self.make_server()
        accel = server.accel(AcceleratorKind.RPC)
        op = AccelOp(AcceleratorKind.RPC, 20500.0, 256, 256)
        entry = QueueEntry(env, op)

        def proc(env):
            assert accel.try_enqueue(entry)
            yield entry.done

        env.process(proc(env))
        env.run()
        assert server.total_ops_completed() == 1
        # RPC speedup 20.5: compute ~1000 ns.
        assert 1000.0 < entry.service_ns < 1200.0

    def test_aggregate_stats_structure(self):
        env, server = self.make_server()
        stats = server.stats()
        assert set(stats) == {"cores", "dma", "network", "tlb", "accelerators"}
        assert set(stats["accelerators"]) == {k.value for k in ACCEL_KINDS}

    def test_utilizations_initially_zero(self):
        env, server = self.make_server()
        env.run(until=1000.0)
        utils = server.accelerator_utilizations()
        assert all(v == 0.0 for v in utils.values())

    def test_counters_initially_zero(self):
        _, server = self.make_server()
        assert server.total_fallbacks() == 0
        assert server.total_overflow_admissions() == 0
        assert server.tlb_stats()["accesses"] == 0

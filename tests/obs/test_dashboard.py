"""Dashboard rendering tests plus the end-to-end telemetry acceptance run."""

import json

import pytest

from repro.obs import SLOMonitorConfig, SLOTarget
from repro.obs.dashboard import Dashboard, preview, run_demo_server
from repro.obs.telemetry import (
    AdmissionEvent,
    AlertFired,
    FaultInjected,
    MetricSample,
    RecoveryEvent,
    RequestEnd,
    TelemetryBus,
)


def _feed_requests(bus, n=10, service="svc", ok=True, latency_ns=1000.0):
    for i in range(n):
        bus.publish(
            RequestEnd(
                t_ns=float(i) * 1e3, service=service,
                latency_ns=latency_ns, ok=ok,
            )
        )


# ----------------------------------------------------------------------
# Unit: state intake and snapshot rendering
# ----------------------------------------------------------------------
def test_empty_dashboard_renders():
    dashboard = Dashboard(TelemetryBus())
    text = dashboard.snapshot()
    assert "fleet telemetry" in text
    assert "(no request telemetry yet)" in text
    assert "(none)" in text  # empty alert feed


def test_request_panel_accumulates():
    bus = TelemetryBus()
    dashboard = Dashboard(bus)
    _feed_requests(bus, n=8, ok=True)
    _feed_requests(bus, n=2, ok=False)
    panel = dashboard.panels["svc"]
    assert panel.total == 10
    assert panel.ok_fraction() == pytest.approx(0.8)
    assert panel.window_rps() > 0
    text = dashboard.snapshot()
    assert "svc" in text
    assert "n=10" in text
    assert "ok  80.0%" in text


def test_slo_gauge_rendered_against_target():
    bus = TelemetryBus()
    slo = SLOMonitorConfig(
        targets=(SLOTarget("svc", availability=0.99, latency_ns=2000.0),)
    )
    dashboard = Dashboard(bus, slo=slo)
    _feed_requests(bus, latency_ns=1000.0)
    text = dashboard.snapshot()
    assert "of 2.0 us target" in text
    assert " 50.0%" in text  # p99 at half the target


def test_alert_feed_and_firing_set():
    bus = TelemetryBus()
    dashboard = Dashboard(bus)
    bus.publish(AlertFired(t_ns=1.0, alert="slo-burn:svc", service="svc",
                           state="firing", burn_fast=12.0, burn_slow=11.0))
    assert set(dashboard.firing) == {"slo-burn:svc"}
    text = dashboard.snapshot()
    assert "[FIRING  ] slo-burn:svc" in text
    bus.publish(AlertFired(t_ns=2.0, alert="slo-burn:svc", service="svc",
                           state="resolved"))
    assert dashboard.firing == {}
    assert "[RESOLVED]" in dashboard.snapshot()


def test_recovery_fault_and_admission_counters():
    bus = TelemetryBus()
    dashboard = Dashboard(bus)
    bus.publish(RecoveryEvent(t_ns=1.0, kind_name="breaker-open"))
    bus.publish(RecoveryEvent(t_ns=2.0, kind_name="watchdog-timeout"))
    bus.publish(RecoveryEvent(t_ns=3.0, kind_name="degraded-to-cpu"))
    bus.publish(FaultInjected(t_ns=4.0, category="pe-transient"))
    bus.publish(FaultInjected(t_ns=5.0, category="pe-transient"))
    bus.publish(AdmissionEvent(t_ns=6.0, service="svc", decision="shed"))
    bus.publish(MetricSample(t_ns=7.0, name="queue_depth", value=3.0))
    assert dashboard.open_breakers == 1
    assert dashboard.watchdog_timeouts == 1
    assert dashboard.degraded_to_cpu == 1
    assert dashboard.shed == 1
    assert dashboard.gauges["queue_depth"] == 3.0
    text = dashboard.snapshot()
    assert "breakers open 1" in text
    assert "pe-transient=2" in text
    bus.publish(RecoveryEvent(t_ns=8.0, kind_name="breaker-close"))
    assert dashboard.open_breakers == 0


def test_render_live_writes_ansi_redraw():
    import io

    bus = TelemetryBus()
    dashboard = Dashboard(bus)
    stream = io.StringIO()
    dashboard.render_live(stream)
    assert stream.getvalue().startswith("\x1b[H\x1b[J")
    assert "fleet telemetry" in stream.getvalue()


def test_preview_unknown_experiment_is_none():
    assert preview("fig11") is None


# ----------------------------------------------------------------------
# Acceptance: seeded fig_faults chaos cell end to end
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def mgr_outage_demo():
    """Seeded relief/mgr-outage cell with the full telemetry plane."""
    return run_demo_server(
        architecture="relief", scenario="mgr-outage", requests=200, seed=0
    )


def test_chaos_run_fires_at_least_one_alert(mgr_outage_demo):
    monitor = mgr_outage_demo["monitor"]
    fired = monitor.fired_ever()
    assert len(fired) >= 1
    assert any(a.name == "slo-burn:StoreP" for a in fired)
    assert all(a.peak_burn_fast >= monitor.config.burn_threshold for a in fired)


def test_chaos_run_captures_incident_with_valid_trace(mgr_outage_demo, tmp_path):
    recorder = mgr_outage_demo["recorder"]
    assert len(recorder.incidents) >= 1
    path = recorder.write(str(tmp_path / "incident.json"))
    bundle = json.load(open(path))
    assert bundle["schema"] == "accelflow-incident/1"
    # The trace slice is valid Chrome/Perfetto trace-event JSON: a
    # traceEvents list whose entries all carry a known phase.
    events = bundle["trace"]["traceEvents"]
    assert isinstance(events, list) and events
    assert all(e["ph"] in ("M", "X", "i") for e in events)
    assert any(e["ph"] == "X" for e in events)  # real spans made it in
    assert any(e.get("cat") == "incident" for e in events)  # trigger marker
    # Fault->breach correlation names the injected outage.
    assert "slo-burn:StoreP" in recorder.correlation
    assert "manager-outage" in recorder.correlation["slo-burn:StoreP"]


def test_chaos_run_dashboard_shows_the_alert(mgr_outage_demo):
    dashboard = mgr_outage_demo["dashboard"]
    text = dashboard.snapshot()
    assert "StoreP" in text
    assert "slo-burn:StoreP" in text
    assert "FIRING" in text or "RESOLVED" in text
    assert "manager-outage" in text  # fault category line


def test_chaos_run_bus_saw_all_event_families(mgr_outage_demo):
    bus = mgr_outage_demo["bus"]
    counts = bus.counts
    assert counts.get("RequestEnd", 0) >= 200
    assert counts.get("SpanEnd", 0) > 0
    assert counts.get("FaultInjected", 0) > 0
    assert counts.get("AlertFired", 0) > 0
    assert counts.get("MetricSample", 0) > 0


def test_runner_preview_smoke():
    text = preview("fig_faults", scale="smoke", seed=0)
    assert text is not None
    assert text.startswith("[dashboard preview: fig_faults")
    assert "fleet telemetry" in text


# ----------------------------------------------------------------------
# Zero-interference: telemetry must not perturb the simulation
# ----------------------------------------------------------------------
def test_telemetry_does_not_change_results():
    """The full streaming plane observes; it must never perturb.

    The same seeded chaos run with and without telemetry has to produce
    identical per-request latencies and outcomes (the golden fixtures
    lock the disabled path; this locks disabled == enabled).
    """
    from repro.experiments.fig_faults import SCENARIOS
    from repro.obs import ObsConfig
    from repro.server.machine import SimulatedServer
    from repro.workloads import social_network_services
    from repro.workloads.arrivals import make_arrivals

    spec = next(s for s in social_network_services() if s.name == "StoreP")

    def run(obs):
        server = SimulatedServer(
            "accelflow", seed=7, faults=SCENARIOS["transient"], obs=obs
        )
        env = server.env
        arrivals = make_arrivals(
            "poisson", 2000.0, server.streams.stream(f"arrivals/{spec.name}")
        )
        in_flight = []

        def source(env):
            for _ in range(60):
                yield env.timeout(arrivals.next_gap_ns())
                request = server.make_request(spec)
                in_flight.append((request, server.submit(request)))

        src = env.process(source(env))

        def watch(env):
            yield src
            yield env.all_of([p for _, p in in_flight])

        env.run(until=env.process(watch(env)))
        return [
            (r.latency_ns, r.error, r.timed_out, r.completed)
            for r, _ in in_flight
        ]

    telemetry_obs = ObsConfig(
        trace=True, metrics=True, telemetry=True, flight_recorder=True,
        slo=SLOMonitorConfig(
            targets=(SLOTarget("StoreP", availability=0.99, latency_ns=1e6),),
            fast_window_ns=2e6, slow_window_ns=2e7,
        ),
    )
    assert run(None) == run(telemetry_obs)


# ----------------------------------------------------------------------
# Idle / degenerate fleet states (regression audit: empty snapshots)
# ----------------------------------------------------------------------
def test_idle_dashboard_with_slo_config_renders():
    # SLO targets configured but zero requests seen: the gauge path must
    # not divide by anything or index empty latency lists.
    slo = SLOMonitorConfig(
        targets=(SLOTarget("svc", availability=0.99, latency_ns=2e6),)
    )
    dashboard = Dashboard(TelemetryBus(), slo=slo)
    text = dashboard.snapshot()
    assert "(no request telemetry yet)" in text
    assert "slo" not in text.splitlines()[1]  # no gauge without a panel


def test_single_outcome_window_rps_is_zero():
    bus = TelemetryBus()
    dashboard = Dashboard(bus)
    bus.publish(RequestEnd(t_ns=5.0, service="svc", latency_ns=1e3, ok=True))
    assert dashboard.panels["svc"].window_rps() == 0.0
    assert "svc" in dashboard.snapshot()


def test_same_timestamp_outcomes_do_not_divide_by_zero_span():
    bus = TelemetryBus()
    dashboard = Dashboard(bus)
    for _ in range(5):
        bus.publish(
            RequestEnd(t_ns=7.0, service="svc", latency_ns=1e3, ok=True)
        )
    assert dashboard.panels["svc"].window_rps() == 0.0
    dashboard.snapshot()


def test_latency_target_of_none_skips_gauge():
    slo = SLOMonitorConfig(
        targets=(SLOTarget("svc", availability=0.99, latency_ns=None),)
    )
    bus = TelemetryBus()
    dashboard = Dashboard(bus, slo=slo)
    _feed_requests(bus, n=4)
    assert "of" not in dashboard.snapshot()  # no "...% of X us target" line

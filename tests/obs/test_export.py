"""Chrome trace-event export: structure, validity, and determinism."""

import json

from repro.obs import ObsConfig, chrome_trace, write_chrome_trace
from repro.server import RunConfig, run_experiment
from repro.workloads import social_network_services

REQUIRED_X_KEYS = {"name", "cat", "ph", "pid", "tid", "ts", "dur"}


def _traced_run(seed=0, requests=12, sample_rate=1.0):
    obs = ObsConfig(trace=True, sample_rate=sample_rate)
    services = [s for s in social_network_services() if s.name == "UniqId"]
    config = RunConfig(
        architecture="accelflow",
        requests_per_service=requests,
        seed=seed,
        colocated=True,
        obs=obs,
    )
    run_experiment(services, config)
    return obs.tracer


def test_chrome_trace_structure():
    payload = chrome_trace(_traced_run())
    assert isinstance(payload["traceEvents"], list)
    assert payload["traceEvents"], "no events exported"
    metadata = [e for e in payload["traceEvents"] if e["ph"] == "M"]
    spans = [e for e in payload["traceEvents"] if e["ph"] == "X"]
    instants = [e for e in payload["traceEvents"] if e["ph"] == "i"]
    assert spans and instants
    named_tids = {
        e["tid"]
        for e in metadata
        if e["name"] == "thread_name" and "tid" in e
    }
    for event in spans:
        assert REQUIRED_X_KEYS <= set(event)
        assert event["ts"] >= 0
        assert event["dur"] >= 0
        assert event["tid"] in named_tids
    for event in instants:
        assert event["s"] == "t"
        assert event["tid"] in named_tids


def test_expected_span_categories_present():
    tracer = _traced_run()
    names = {s.name for s in tracer.spans}
    assert "arrival" in names
    assert "request UniqId" in names
    assert "exec" in names
    assert "output-dispatch" in names
    assert "notify" in names
    assert any(n.startswith("dma ") for n in names)
    tracks = set(tracer.tracks())
    assert "req:UniqId" in tracks
    assert "cores" in tracks
    assert "dma" in tracks
    assert any(t.startswith("accel:") for t in tracks)


def test_trace_export_is_deterministic_for_fixed_seed():
    first = chrome_trace(_traced_run(seed=3))
    second = chrome_trace(_traced_run(seed=3))
    assert first == second


def test_trace_differs_across_seeds():
    first = chrome_trace(_traced_run(seed=0))
    second = chrome_trace(_traced_run(seed=1))
    assert first != second


def test_sampling_reduces_span_count():
    full = _traced_run(sample_rate=1.0)
    half = _traced_run(sample_rate=0.5)
    assert 0 < len(half.spans) < len(full.spans)
    # Stride sampling keeps every other request of the service.
    full_reqs = {s.req for s in full.spans if s.req is not None}
    half_reqs = {s.req for s in half.spans if s.req is not None}
    assert len(half_reqs) == len(full_reqs) // 2


def test_write_chrome_trace_round_trips(tmp_path):
    tracer = _traced_run(requests=4)
    path = write_chrome_trace(tracer, str(tmp_path / "trace.json"))
    with open(path) as handle:
        loaded = json.load(handle)
    assert loaded == chrome_trace(tracer)


def test_unclosed_spans_exported_not_dropped():
    """Spans still open at export time are auto-closed and kept.

    They used to be skipped silently, so a request in flight at the
    horizon simply vanished from the trace.
    """
    from repro.obs import SpanTracer
    from repro.sim import Environment

    env = Environment()
    tracer = SpanTracer(env)
    tracer.begin("in-flight", "t")
    tracer.complete("finished", "t", 0.0, 1.0)

    def advance(env):
        yield env.timeout(9.0)

    env.process(advance(env))
    env.run()
    payload = chrome_trace(tracer)
    names = {e["name"] for e in payload["traceEvents"] if e["ph"] == "X"}
    assert names == {"in-flight", "finished"}
    stuck = next(
        e for e in payload["traceEvents"] if e.get("name") == "in-flight"
    )
    assert stuck["args"]["unclosed"] is True
    assert stuck["dur"] == 9.0 / 1000.0
    assert payload["otherData"]["unclosed"] == 1

"""Time-series registry: ring buffers, sampler process, rendering."""

import pytest

from repro.obs import MetricsRegistry, TimeSeries
from repro.sim import Environment


class TestTimeSeries:
    def test_push_and_read(self):
        series = TimeSeries("x", capacity=4)
        for i in range(3):
            series.push(float(i), float(i) * 10)
        assert series.times == [0.0, 1.0, 2.0]
        assert series.values == [0.0, 10.0, 20.0]
        assert series.last() == 20.0
        assert len(series) == 3

    def test_ring_buffer_evicts_oldest(self):
        series = TimeSeries("x", capacity=3)
        for i in range(10):
            series.push(float(i), float(i))
        assert series.times == [7.0, 8.0, 9.0]

    def test_empty(self):
        series = TimeSeries("x", capacity=2)
        assert series.last() is None
        with pytest.raises(ValueError):
            TimeSeries("bad", capacity=0)


class TestMetricsRegistry:
    def test_gauge_sampling(self):
        env = Environment()
        registry = MetricsRegistry(env, interval_ns=10.0, capacity=100)
        state = {"v": 0.0}
        registry.gauge("v", lambda: state["v"])

        def mutate(env):
            yield env.timeout(25.0)
            state["v"] = 5.0
            yield env.timeout(25.0)

        registry.start()
        env.process(mutate(env))
        env.run(until=50.0)
        values = registry.series["v"].values
        assert values[:2] == [0.0, 0.0]
        assert values[-1] == 5.0
        assert registry.series["v"].times[0] == 10.0

    def test_rate_gauge_reports_per_second_rate(self):
        env = Environment()
        registry = MetricsRegistry(env, interval_ns=1e9, capacity=10)
        counter = {"n": 0}
        registry.rate_gauge("rate", lambda: counter["n"])

        def produce(env):
            # Increments land strictly between sampler ticks so the
            # count seen at each tick is unambiguous.
            for _ in range(4):
                yield env.timeout(0.4e9)
                counter["n"] += 3

        registry.start()
        env.process(produce(env))
        env.run(until=2.5e9)
        # 6 completions per 1-second tick.
        assert registry.series["rate"].values == [6.0, 6.0]

    def test_sampler_terminates_on_bare_run(self):
        env = Environment()
        registry = MetricsRegistry(env, interval_ns=5.0, capacity=7)
        registry.gauge("x", lambda: 1.0)
        registry.start()
        env.run()  # must not hang: sampler exits after `capacity` ticks
        assert registry.ticks == 7
        assert env.now == 35.0

    def test_stop_ends_sampler_early(self):
        env = Environment()
        registry = MetricsRegistry(env, interval_ns=5.0, capacity=100)
        registry.gauge("x", lambda: 1.0)
        registry.start()

        def stopper(env):
            yield env.timeout(12.0)
            registry.stop()

        env.process(stopper(env))
        env.run()
        assert registry.ticks <= 3

    def test_restart_between_ticks_does_not_double_sample(self):
        """stop() + start() before the old sampler's next tick must
        supersede it: exactly one sample per interval afterwards, not
        two (the old process used to keep running alongside the new)."""
        env = Environment()
        registry = MetricsRegistry(env, interval_ns=10.0, capacity=100)
        registry.gauge("x", lambda: 1.0)
        registry.start()

        def restarter(env):
            # Mid-interval (t=5): the old sampler is asleep until t=10.
            yield env.timeout(5.0)
            registry.stop()
            registry.start()

        env.process(restarter(env))
        env.run(until=100.0)
        times = registry.series["x"].times
        # Only the replacement sampler's 10ns grid (anchored at t=5) may
        # appear. Before the fix the superseded sampler kept ticking on
        # its own grid (10, 20, ...) alongside, doubling the sample count.
        assert times == [15.0 + 10.0 * i for i in range(9)], times
        assert registry.ticks == len(times)

    def test_restart_after_exit_resumes_sampling(self):
        env = Environment()
        registry = MetricsRegistry(env, interval_ns=10.0, capacity=100)
        registry.gauge("x", lambda: 1.0)
        registry.start()

        def cycle(env):
            yield env.timeout(25.0)
            registry.stop()
            # Old sampler wakes at t=30, records its final tick, exits.
            yield env.timeout(10.0)
            registry.start()

        env.process(cycle(env))
        env.run(until=80.0)
        times = registry.series["x"].times
        assert len(times) == len(set(times))
        assert registry.ticks == len(times)
        # Sampling continued after the restart.
        assert times[-1] > 40.0

    def test_duplicate_name_rejected(self):
        registry = MetricsRegistry(Environment())
        registry.gauge("x", lambda: 0.0)
        with pytest.raises(ValueError):
            registry.gauge("x", lambda: 0.0)
        with pytest.raises(ValueError):
            MetricsRegistry(Environment(), interval_ns=0.0)

    def test_render_shows_all_series(self):
        env = Environment()
        registry = MetricsRegistry(env, interval_ns=1.0, capacity=50)
        registry.gauge("alpha", lambda: env.now)
        registry.gauge("beta", lambda: 0.0)
        registry.start()
        env.run(until=20.0)
        text = registry.render(width=10)
        assert "alpha" in text and "beta" in text
        assert "min" in text and "max" in text
        assert "(no samples)" not in text


class TestSparklineRow:
    def test_empty_and_all_nan_degrade_to_text(self):
        from repro.obs.metrics import sparkline_row

        assert "(no samples)" in sparkline_row("x", [])
        assert "(no finite samples)" in sparkline_row(
            "x", [float("nan"), float("nan")]
        )

    def test_nan_tail_does_not_poison_summary(self):
        from repro.obs.metrics import sparkline_row

        row = sparkline_row("x", [1.0, 3.0, float("nan")])
        assert "min 1.0" in row
        assert "max 3.0" in row
        assert "last 3.0" in row  # falls back to the last finite value
        assert "nan" not in row

    def test_all_equal_series_renders(self):
        from repro.obs.metrics import sparkline_row

        row = sparkline_row("x", [2.0, 2.0, 2.0])
        assert "min 2.0" in row and "max 2.0" in row


class TestBusPublishing:
    def test_sampler_publishes_metric_samples(self):
        from repro.obs import TelemetryBus
        from repro.obs.telemetry import MetricSample

        env = Environment()
        registry = MetricsRegistry(env, interval_ns=10.0, capacity=3)
        registry.bus = TelemetryBus()
        registry.gauge("depth", lambda: 4.0)
        counter = {"n": 0}
        registry.rate_gauge("rate", lambda: counter["n"])
        registry.start()
        env.run()
        samples = registry.bus.recent(kinds=(MetricSample,))
        by_name = {}
        for s in samples:
            by_name.setdefault(s.name, []).append(s.value)
        assert by_name["depth"] == [4.0, 4.0, 4.0]
        assert len(by_name["rate"]) == 3

    def test_no_bus_no_publishing(self):
        env = Environment()
        registry = MetricsRegistry(env, interval_ns=10.0, capacity=2)
        registry.gauge("depth", lambda: 1.0)
        registry.start()
        env.run()  # must not raise without a bus attached
        assert registry.ticks == 2

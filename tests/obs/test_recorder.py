"""Unit tests for the incident flight recorder."""

import json

import pytest

from repro.obs import FlightRecorder
from repro.obs.recorder import trace_from_span_events
from repro.obs.telemetry import (
    AlertFired,
    FaultInjected,
    MetricSample,
    RecoveryEvent,
    RequestEnd,
    SpanEnd,
    TelemetryBus,
)


def _recorder(**kwargs):
    bus = TelemetryBus()
    kwargs.setdefault("cooldown_ns", 0.0)
    return bus, FlightRecorder(bus, **kwargs)


def _firing(t_ns, alert="slo-burn:svc"):
    return AlertFired(
        t_ns=t_ns, alert=alert, service="svc", state="firing",
        burn_fast=5.0, burn_slow=3.0,
    )


# ----------------------------------------------------------------------
# Trigger paths
# ----------------------------------------------------------------------
def test_alert_firing_triggers_capture():
    bus, recorder = _recorder()
    bus.publish(_firing(10.0))
    assert recorder.triggered == 1
    assert len(recorder.incidents) == 1
    bundle = recorder.incidents[0]
    assert bundle["reason"] == "alert-firing"
    assert bundle["trigger"]["alert"] == "slo-burn:svc"


def test_pending_and_resolved_do_not_trigger():
    bus, recorder = _recorder()
    for state in ("pending", "resolved"):
        bus.publish(
            AlertFired(t_ns=1.0, alert="a", service="svc", state=state)
        )
    assert recorder.triggered == 0
    assert recorder.incidents == []


def test_breaker_open_triggers_and_tracks_count():
    bus, recorder = _recorder()
    bus.publish(RecoveryEvent(t_ns=5.0, kind_name="breaker-open",
                              args={"accel": "pe"}))
    assert recorder.triggered == 1
    assert recorder.incidents[0]["reason"] == "breaker-open"
    assert recorder.open_breakers == 1
    bus.publish(RecoveryEvent(t_ns=9.0, kind_name="breaker-close",
                              args={"accel": "pe"}))
    assert recorder.open_breakers == 0
    # breaker-close is not a trigger.
    assert recorder.triggered == 1


def test_watchdog_timeout_triggers():
    bus, recorder = _recorder()
    bus.publish(RecoveryEvent(t_ns=3.0, kind_name="watchdog-timeout"))
    assert recorder.incidents[0]["reason"] == "watchdog-timeout"


def test_degraded_to_cpu_is_recorded_but_not_a_trigger():
    bus, recorder = _recorder()
    bus.publish(RecoveryEvent(t_ns=3.0, kind_name="degraded-to-cpu"))
    assert recorder.triggered == 0
    bus.publish(_firing(4.0))
    assert recorder.incidents[0]["recovery_in_window"] == {
        "degraded-to-cpu": 1
    }


# ----------------------------------------------------------------------
# Cooldown / bounds
# ----------------------------------------------------------------------
def test_cooldown_suppresses_capture_but_still_counts_trigger():
    bus, recorder = _recorder(cooldown_ns=100.0)
    bus.publish(_firing(0.0))
    bus.publish(_firing(50.0, alert="slo-burn:other"))  # inside cooldown
    bus.publish(_firing(200.0))  # past cooldown
    assert recorder.triggered == 3
    assert recorder.suppressed == 1
    assert len(recorder.incidents) == 2
    # The suppressed breach still lands in the correlation table.
    assert "slo-burn:other" in recorder.correlation


def test_cooldown_is_per_trigger_kind():
    # Regression: the cooldown used to be one shared window, so an
    # alert storm would suppress the first capture of an unrelated
    # breaker trip (and vice versa). Distinct trigger kinds must each
    # get their own cooldown window.
    bus, recorder = _recorder(cooldown_ns=100.0)
    bus.publish(_firing(0.0))
    bus.publish(RecoveryEvent(t_ns=10.0, kind_name="breaker-open"))
    bus.publish(RecoveryEvent(t_ns=20.0, kind_name="watchdog-timeout"))
    # All three kinds captured despite landing inside one another's
    # windows.
    assert [b["reason"] for b in recorder.incidents] == [
        "alert-firing", "breaker-open", "watchdog-timeout",
    ]
    assert recorder.suppressed == 0
    # Repeats of the same kind inside its own window still suppress...
    bus.publish(RecoveryEvent(t_ns=30.0, kind_name="breaker-open"))
    bus.publish(_firing(40.0))
    assert recorder.suppressed == 2
    assert len(recorder.incidents) == 3
    # ...and fire again once that kind's window has passed.
    bus.publish(RecoveryEvent(t_ns=150.0, kind_name="breaker-open"))
    assert len(recorder.incidents) == 4
    assert recorder.incidents[-1]["reason"] == "breaker-open"


def test_incident_list_is_bounded():
    bus, recorder = _recorder(max_incidents=2)
    for t in range(4):
        bus.publish(_firing(float(t)))
    assert len(recorder.incidents) == 2
    assert recorder.incidents_dropped == 2
    assert recorder.incidents[-1]["t_ns"] == 3.0


def test_ring_is_bounded():
    bus, recorder = _recorder(capacity=4)
    for t in range(10):
        bus.publish(RequestEnd(t_ns=float(t), service="svc",
                               latency_ns=1.0, ok=True))
    assert len(recorder.ring) == 4


def test_invalid_sizes_rejected():
    bus = TelemetryBus()
    with pytest.raises(ValueError):
        FlightRecorder(bus, capacity=0)
    with pytest.raises(ValueError):
        FlightRecorder(bus, max_incidents=0)


# ----------------------------------------------------------------------
# Bundle contents
# ----------------------------------------------------------------------
def test_bundle_is_self_contained_and_json_serializable(tmp_path):
    bus, recorder = _recorder()
    bus.publish(SpanEnd(t_ns=2.0, name="pe.exec", track="pe0",
                        start_ns=1.0, end_ns=2.0, req=0))
    bus.publish(SpanEnd(t_ns=2.0, name="mark", track="pe0",
                        start_ns=2.0, end_ns=2.0))
    bus.publish(MetricSample(t_ns=3.0, name="queue_depth", value=7.0))
    bus.publish(MetricSample(t_ns=4.0, name="queue_depth", value=9.0))
    bus.publish(FaultInjected(t_ns=5.0, category="pe-transient"))
    bus.publish(_firing(6.0))
    bundle = recorder.incidents[0]
    assert bundle["schema"] == "accelflow-incident/1"
    assert bundle["metrics"]["queue_depth"]["last"] == 9.0  # latest wins
    assert bundle["faults_in_window"] == {"pe-transient": 1}
    assert bundle["active_alerts"] == {"slo-burn:svc": "firing"}
    assert bundle["events_in_window"] == 6
    # Round-trips through JSON and loads as a valid Chrome trace.
    path = recorder.write(str(tmp_path / "incident.json"))
    loaded = json.load(open(path))
    events = loaded["trace"]["traceEvents"]
    assert all(e["ph"] in ("M", "X", "i") for e in events)
    complete = [e for e in events if e["ph"] == "X"]
    assert complete[0]["name"] == "pe.exec"
    assert complete[0]["dur"] == pytest.approx(0.001)  # 1ns in us
    assert any(e["name"] == "incident: alert-firing" for e in events)


def test_write_without_incidents_raises(tmp_path):
    _, recorder = _recorder()
    with pytest.raises(ValueError):
        recorder.write(str(tmp_path / "nope.json"))


def test_resolved_alert_leaves_active_set():
    bus, recorder = _recorder(cooldown_ns=1e9)
    bus.publish(_firing(1.0))
    bus.publish(AlertFired(t_ns=2.0, alert="slo-burn:svc",
                           service="svc", state="resolved"))
    bundle = recorder.capture("manual", _firing(3.0))
    assert bundle["active_alerts"] == {}


# ----------------------------------------------------------------------
# Correlation
# ----------------------------------------------------------------------
def test_correlation_counts_faults_preceding_each_breach():
    bus, recorder = _recorder()
    bus.publish(FaultInjected(t_ns=1.0, category="manager-outage"))
    bus.publish(FaultInjected(t_ns=2.0, category="pe-transient"))
    bus.publish(_firing(3.0))
    bus.publish(FaultInjected(t_ns=4.0, category="pe-transient"))
    bus.publish(RecoveryEvent(t_ns=5.0, kind_name="watchdog-timeout"))
    assert recorder.correlation["slo-burn:svc"] == {
        "manager-outage": 1, "pe-transient": 1,
    }
    assert recorder.correlation["watchdog-timeout"] == {
        "manager-outage": 1, "pe-transient": 2,
    }
    table = recorder.correlation_table()
    assert "slo-burn:svc" in table
    assert "pe-transient" in table


def test_correlation_table_handles_empty_states():
    _, recorder = _recorder()
    assert "no breaches" in recorder.correlation_table()
    recorder.correlation["breach-x"] = {}
    assert "no faults in window" in recorder.correlation_table()


def test_stats_shape():
    bus, recorder = _recorder()
    bus.publish(_firing(1.0))
    stats = recorder.stats()
    assert stats["captured"] == 1.0
    assert stats["triggered"] == 1.0


# ----------------------------------------------------------------------
# Standalone trace builder
# ----------------------------------------------------------------------
def test_trace_from_span_events_tracks_and_instants():
    spans = [
        SpanEnd(t_ns=5.0, name="a", track="pe0", start_ns=1.0, end_ns=5.0,
                args={"k": 1}),
        SpanEnd(t_ns=6.0, name="i", track="dma", start_ns=6.0, end_ns=6.0),
    ]
    trace = trace_from_span_events(spans)
    events = trace["traceEvents"]
    thread_names = [e["args"]["name"] for e in events
                    if e.get("name") == "thread_name"]
    assert thread_names == ["pe0", "dma"]
    instant = [e for e in events if e["ph"] == "i"][0]
    assert instant["name"] == "i"
    complete = [e for e in events if e["ph"] == "X"][0]
    assert complete["args"] == {"k": 1}
    assert json.loads(json.dumps(trace)) == trace

"""Unit tests for burn-rate math and the SLO alert lifecycle."""

import pytest

from repro.obs import SLOMonitor, SLOMonitorConfig, SLOTarget
from repro.obs.slo import AlertState, _ServiceWindow
from repro.obs.telemetry import AlertFired, RequestEnd, TelemetryBus


def _config(**overrides):
    defaults = dict(
        targets=(SLOTarget("svc", availability=0.9),),
        fast_window_ns=10.0,
        slow_window_ns=100.0,
        burn_threshold=2.0,
        min_events=2,
    )
    defaults.update(overrides)
    return SLOMonitorConfig(**defaults)


def _monitor(**overrides):
    bus = TelemetryBus()
    monitor = SLOMonitor(bus, _config(**overrides))
    transitions = []
    bus.subscribe(
        lambda e: transitions.append((e.state, e.t_ns)), kinds=(AlertFired,)
    )
    return bus, monitor, transitions


def _end(bus, t_ns, ok, service="svc", latency_ns=1.0):
    bus.publish(
        RequestEnd(t_ns=t_ns, service=service, latency_ns=latency_ns, ok=ok)
    )


# ----------------------------------------------------------------------
# Burn-rate math / window geometry
# ----------------------------------------------------------------------
def test_burn_rate_is_bad_fraction_over_budget():
    window = _ServiceWindow(SLOTarget("svc", availability=0.9))  # budget 0.1
    config = _config()
    for t in range(4):  # 2 bad of 4 -> fraction 0.5 -> burn 5.0
        window.add(float(t), bad=(t % 2 == 0))
    fast, slow = window.burn_rates(4.0, config)
    assert fast == pytest.approx(5.0)
    assert slow == pytest.approx(5.0)


def test_window_edge_alignment_is_strictly_greater():
    """Membership is ``t > now - window``: the edge sample has aged out."""
    config = _config(min_events=1)
    window = _ServiceWindow(SLOTarget("svc", availability=0.9))
    window.add(0.0, bad=True)
    window.add(50.0, bad=False)
    # now=100: t=0 sits exactly one slow window back -> pruned.
    fast, slow = window.burn_rates(100.0, config)
    assert window.bad_total == 0
    assert slow == 0.0
    # Fast window (10ns) at now=55: t=50 is in (45, 55], t=0 long gone.
    window2 = _ServiceWindow(SLOTarget("svc", availability=0.9))
    window2.add(45.0, bad=True)
    window2.add(50.0, bad=True)
    fast, _ = window2.burn_rates(55.0, config)
    # t=45 is exactly now - fast_window -> excluded from the fast count.
    assert fast == pytest.approx((1 / 1) / 0.1)


def test_under_sampled_windows_do_not_burn():
    bus, monitor, transitions = _monitor(min_events=5)
    for t in range(4):
        _end(bus, float(t), ok=False)  # 100% bad but only 4 events
    assert transitions == []
    _end(bus, 4.0, ok=False)
    assert [s for s, _ in transitions] == ["pending", "firing"]


def test_latency_slo_counts_slow_completions_as_bad():
    bus, monitor, _ = _monitor(
        targets=(SLOTarget("svc", availability=0.9, latency_ns=100.0),)
    )
    target = monitor.target_for("svc")
    fast_req = RequestEnd(t_ns=0.0, service="svc", latency_ns=50.0, ok=True)
    slow_req = RequestEnd(t_ns=0.0, service="svc", latency_ns=150.0, ok=True)
    failed = RequestEnd(t_ns=0.0, service="svc", latency_ns=50.0, ok=False)
    assert not monitor.is_bad(fast_req, target)
    assert monitor.is_bad(slow_req, target)
    assert monitor.is_bad(failed, target)


def test_wildcard_target_monitors_unknown_services():
    bus = TelemetryBus()
    monitor = SLOMonitor(
        bus,
        _config(
            targets=(
                SLOTarget("known", availability=0.99),
                SLOTarget("*", availability=0.5),
            )
        ),
    )
    assert monitor.target_for("known").availability == 0.99
    assert monitor.target_for("anything").availability == 0.5
    _end(bus, 1.0, ok=True, service="anything")
    assert monitor.events_seen == 1


def test_unmonitored_service_is_ignored():
    bus, monitor, transitions = _monitor()
    _end(bus, 1.0, ok=False, service="other")
    assert monitor.events_seen == 0
    assert transitions == []


# ----------------------------------------------------------------------
# Alert lifecycle / hysteresis
# ----------------------------------------------------------------------
def test_zero_pending_hold_promotes_immediately():
    bus, monitor, transitions = _monitor(pending_for_ns=0.0)
    for t in range(3):
        _end(bus, float(t), ok=False)
    assert [s for s, _ in transitions] == ["pending", "firing"]
    assert transitions[0][1] == transitions[1][1]  # same sweep
    assert len(monitor.firing()) == 1


def test_pending_hold_delays_firing():
    bus, monitor, transitions = _monitor(pending_for_ns=5.0)
    _end(bus, 0.0, ok=False)
    _end(bus, 1.0, ok=False)
    assert [s for s, _ in transitions] == ["pending"]
    _end(bus, 3.0, ok=False)  # held 3ns < 5ns: still pending
    assert [s for s, _ in transitions] == ["pending"]
    _end(bus, 6.0, ok=False)  # held 6ns >= 5ns: fires
    assert [s for s, _ in transitions] == ["pending", "firing"]


def test_pending_cancelled_when_burn_clears():
    bus, monitor, transitions = _monitor(pending_for_ns=50.0)
    _end(bus, 0.0, ok=False)
    _end(bus, 1.0, ok=False)
    assert [s for s, _ in transitions] == ["pending"]
    # Flood of good outcomes clears both windows before the hold expires.
    for t in range(2, 30):
        _end(bus, float(t), ok=True)
    assert [s for s, _ in transitions] == ["pending"]
    assert monitor.alerts["svc"].state == AlertState.INACTIVE


def test_resolve_after_recovery_hysteresis():
    bus, monitor, transitions = _monitor(resolve_after_ns=20.0)
    for t in range(3):
        _end(bus, float(t), ok=False)
    assert [s for s, _ in transitions] == ["pending", "firing"]
    # Healthy stretch shorter than the resolve hold: still firing.
    for t in range(3, 15):
        _end(bus, float(t), ok=True)
    assert [s for s, _ in transitions] == ["pending", "firing"]
    # Keep healthy past the hold (and past window aging): resolves.
    for t in range(15, 40):
        _end(bus, float(t), ok=True)
    assert [s for s, _ in transitions] == ["pending", "firing", "resolved"]
    assert len(monitor.history) == 1
    assert monitor.firing() == []


def test_single_straggler_neither_fires_nor_flaps():
    bus, monitor, transitions = _monitor()
    for t in range(20):
        _end(bus, float(t), ok=(t != 10))  # one bad outcome mid-stream
    assert transitions == []


def test_fresh_alert_object_after_resolve():
    bus, monitor, _ = _monitor(resolve_after_ns=1.0)
    for t in range(3):
        _end(bus, float(t), ok=False)
    first = monitor.alerts["svc"]
    for t in range(3, 40):
        _end(bus, float(t), ok=True)
    assert monitor.history == [first]
    # Later sweeps track the service with a *new* (inactive) Alert.
    assert monitor.alerts.get("svc") is not first
    # A second burn creates a distinct Alert with its own lifecycle
    # (long enough to drag the slow window back over the threshold).
    for t in range(40, 55):
        _end(bus, float(t), ok=False)
    second = monitor.alerts["svc"]
    assert second is not first
    assert second.state == AlertState.FIRING
    assert monitor.fired_ever() == [first, second]


def test_explicit_sweep_resolves_quiet_service():
    bus, monitor, transitions = _monitor(resolve_after_ns=10.0)
    for t in range(3):
        _end(bus, float(t), ok=False)
    assert [s for s, _ in transitions] == ["pending", "firing"]
    # No further traffic; sweep far in the future ages the windows out.
    monitor.sweep(500.0)
    monitor.sweep(600.0)
    assert [s for s, _ in transitions] == ["pending", "firing", "resolved"]


def test_alert_spans_land_on_alerts_track():
    from repro.obs import SpanTracer
    from repro.sim import Environment

    bus = TelemetryBus()
    tracer = SpanTracer(Environment())
    monitor = SLOMonitor(bus, _config(resolve_after_ns=1.0), tracer=tracer)
    for t in range(3):
        _end(bus, float(t), ok=False)
    for t in range(3, 40):
        _end(bus, float(t), ok=True)
    spans = tracer.spans_for(track="alerts")
    names = [s.name for s in spans]
    assert any(n.startswith("alert slo-burn:svc") for n in names)
    firing = [s for s in spans if s.name == "alert slo-burn:svc"][0]
    assert firing.end_ns is not None
    assert monitor.history[0].peak_burn_fast >= 2.0


def test_stats_and_config_validation():
    bus, monitor, _ = _monitor()
    _end(bus, 1.0, ok=True)
    stats = monitor.stats()
    assert stats["events_seen"] == 1.0
    with pytest.raises(ValueError):
        SLOTarget("svc", availability=1.5)
    with pytest.raises(ValueError):
        SLOTarget("svc", latency_ns=-1.0)
    with pytest.raises(ValueError):
        SLOMonitorConfig(targets=())
    with pytest.raises(ValueError):
        _config(fast_window_ns=200.0)  # fast > slow
    with pytest.raises(ValueError):
        _config(burn_threshold=0.0)

"""Unit tests for the span tracer."""

import pytest

from repro.obs import SpanTracer
from repro.sim import Environment


class FakeSpec:
    def __init__(self, name):
        self.name = name


class FakeRequest:
    _next = iter(range(10_000, 20_000))

    def __init__(self, service="svc"):
        self.rid = next(self._next)
        self.spec = FakeSpec(service)


def test_begin_end_records_duration():
    env = Environment()
    tracer = SpanTracer(env)
    span = tracer.begin("work", "trackA", cat="test")

    def advance(env):
        yield env.timeout(5.0)

    env.process(advance(env))
    env.run()
    tracer.end(span, extra=1)
    assert span.duration_ns == 5.0
    assert span.args == {"extra": 1}
    assert tracer.tracks() == ["trackA"]


def test_complete_and_instant():
    env = Environment()
    tracer = SpanTracer(env)
    tracer.complete("x", "t", 10.0, 30.0)
    marker = tracer.instant("m", "t")
    assert len(tracer) == 2
    assert tracer.spans[0].duration_ns == 20.0
    assert marker.is_instant


def test_sample_rate_one_keeps_all():
    env = Environment()
    tracer = SpanTracer(env, sample_rate=1.0)
    taken = [tracer.sample_request(FakeRequest()) for _ in range(10)]
    assert all(taken)


def test_stride_sampling_is_deterministic():
    env = Environment()
    tracer = SpanTracer(env, sample_rate=0.25)
    taken = [tracer.sample_request(FakeRequest()) for _ in range(20)]
    assert sum(taken) == 5
    # Same stride pattern regardless of global request-id offsets.
    tracer2 = SpanTracer(Environment(), sample_rate=0.25)
    taken2 = [tracer2.sample_request(FakeRequest()) for _ in range(20)]
    assert taken == taken2


def test_zero_rate_samples_nothing():
    tracer = SpanTracer(Environment(), sample_rate=0.0)
    assert not any(tracer.sample_request(FakeRequest()) for _ in range(5))


def test_service_filter():
    tracer = SpanTracer(Environment(), services=["keep"])
    assert tracer.sample_request(FakeRequest("keep"))
    assert not tracer.sample_request(FakeRequest("drop"))


def test_local_ids_are_trace_relative():
    tracer = SpanTracer(Environment())
    first, second = FakeRequest(), FakeRequest()
    tracer.sample_request(first)
    tracer.sample_request(second)
    assert tracer.local_id(first.rid) == 0
    assert tracer.local_id(second.rid) == 1
    assert tracer.local_id(99999999) is None


def test_finish_request_stops_sampling_but_keeps_ids():
    tracer = SpanTracer(Environment())
    request = FakeRequest()
    tracer.sample_request(request)
    assert tracer.is_sampled(request.rid)
    tracer.finish_request(request.rid)
    assert not tracer.is_sampled(request.rid)
    assert tracer.local_id(request.rid) == 0


def test_max_spans_drops_and_counts():
    tracer = SpanTracer(Environment(), max_spans=2)
    tracer.complete("a", "t", 0.0, 1.0)
    tracer.complete("b", "t", 0.0, 1.0)
    dropped = tracer.complete("c", "t", 0.0, 1.0)
    assert dropped is None
    assert len(tracer) == 2
    assert tracer.dropped == 1
    tracer.end(dropped)  # ending a dropped span is a no-op


def test_spans_for_filters():
    tracer = SpanTracer(Environment())
    request = FakeRequest()
    tracer.sample_request(request)
    tracer.complete("a", "t1", 0.0, 1.0, rid=request.rid)
    tracer.complete("b", "t2", 0.0, 1.0)
    assert [s.name for s in tracer.spans_for(track="t1")] == ["a"]
    assert [s.name for s in tracer.spans_for(req=0)] == ["a"]


def test_invalid_parameters_rejected():
    with pytest.raises(ValueError):
        SpanTracer(Environment(), sample_rate=1.5)
    with pytest.raises(ValueError):
        SpanTracer(Environment(), max_spans=0)


def test_close_open_spans_auto_closes_with_marker():
    env = Environment()
    tracer = SpanTracer(env)
    open_span = tracer.begin("stuck", "trackA")
    tracer.complete("done", "trackA", 0.0, 1.0)

    def advance(env):
        yield env.timeout(7.0)

    env.process(advance(env))
    env.run()
    closed = tracer.close_open_spans()
    assert closed == 1
    assert tracer.unclosed == 1
    assert open_span.end_ns == 7.0
    assert open_span.args == {"unclosed": True}
    # Idempotent: nothing left open on a second pass.
    assert tracer.close_open_spans() == 0
    assert tracer.unclosed == 1


def test_span_lifecycle_publishes_to_bus():
    from repro.obs import TelemetryBus
    from repro.obs.telemetry import SpanEnd

    env = Environment()
    tracer = SpanTracer(env)
    tracer.bus = TelemetryBus()
    span = tracer.begin("work", "t")
    assert tracer.bus.published == 0  # begin does not publish
    tracer.end(span)
    tracer.complete("c", "t", 0.0, 2.0)
    tracer.instant("i", "t")
    events = tracer.bus.recent(kinds=(SpanEnd,))
    assert [e.name for e in events] == ["work", "c", "i"]
    leftover = tracer.begin("stuck", "t")
    tracer.close_open_spans()
    assert tracer.bus.recent(kinds=(SpanEnd,))[-1].name == "stuck"
    assert leftover.args == {"unclosed": True}

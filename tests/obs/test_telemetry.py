"""Unit tests for the telemetry bus and its typed events."""

import pytest

from repro.obs.telemetry import (
    AlertFired,
    FaultInjected,
    Marker,
    MetricSample,
    RequestEnd,
    SpanEnd,
    TelemetryBus,
)


def _req(t_ns, service="svc", ok=True, **kwargs):
    return RequestEnd(t_ns=t_ns, service=service, latency_ns=10.0, ok=ok, **kwargs)


def test_publish_reaches_ring_and_subscribers():
    bus = TelemetryBus()
    seen = []
    bus.subscribe(seen.append)
    event = _req(1.0)
    bus.publish(event)
    assert seen == [event]
    assert list(bus.events) == [event]
    assert bus.published == 1
    assert len(bus) == 1


def test_kind_filter_includes_subclasses_only():
    bus = TelemetryBus()
    requests, markers = [], []
    bus.subscribe(requests.append, kinds=(RequestEnd,))
    bus.subscribe(markers.append, kinds=(Marker,))
    bus.publish(_req(1.0))
    bus.publish(Marker(t_ns=2.0, name="run-start"))
    bus.publish(MetricSample(t_ns=3.0, name="g", value=1.0))
    assert [e.kind for e in requests] == ["RequestEnd"]
    assert [e.kind for e in markers] == ["Marker"]


def test_ring_overwrite_is_counted_not_silent():
    bus = TelemetryBus(capacity=3)
    for i in range(5):
        bus.publish(_req(float(i)))
    assert len(bus) == 3
    assert bus.overwritten == 2
    assert bus.published == 5
    assert [e.t_ns for e in bus.events] == [2.0, 3.0, 4.0]


def test_counts_track_per_kind_totals():
    bus = TelemetryBus()
    bus.publish(_req(1.0))
    bus.publish(_req(2.0))
    bus.publish(FaultInjected(t_ns=3.0, category="pe-transient"))
    assert bus.counts == {"RequestEnd": 2, "FaultInjected": 1}
    stats = bus.stats()
    assert stats["count:RequestEnd"] == 2.0
    assert stats["published"] == 3.0


def test_tail_is_bounded_and_counts_drops():
    bus = TelemetryBus()
    tail = bus.tail(kinds=(RequestEnd,), maxlen=2)
    bus.publish(Marker(t_ns=0.0, name="ignored-by-filter"))
    for i in range(4):
        bus.publish(_req(float(i)))
    assert tail.dropped == 2
    drained = tail.drain()
    assert [e.t_ns for e in drained] == [2.0, 3.0]
    assert len(tail) == 0
    assert tail.drain() == []


def test_unsubscribe_stops_delivery():
    bus = TelemetryBus()
    seen = []
    callback = bus.subscribe(seen.append)
    bus.publish(_req(1.0))
    bus.unsubscribe(callback)
    bus.publish(_req(2.0))
    assert len(seen) == 1


def test_reentrant_publish_from_handler_nests_cleanly():
    """A handler may publish (the SLO monitor fires alerts inline)."""
    bus = TelemetryBus()
    order = []

    def fire_alert(event):
        if isinstance(event, RequestEnd):
            order.append("request")
            bus.publish(
                AlertFired(
                    t_ns=event.t_ns, alert="a", service="svc", state="firing"
                )
            )
        else:
            order.append("alert")

    bus.subscribe(fire_alert)
    bus.publish(_req(1.0))
    # The nested alert is fully dispatched before publish() returns.
    assert order == ["request", "alert"]
    assert bus.counts == {"RequestEnd": 1, "AlertFired": 1}


def test_subscriber_added_mid_dispatch_sees_later_events_only():
    bus = TelemetryBus()
    late = []

    def add_subscriber(event):
        bus.subscribe(late.append)
        bus.unsubscribe(add_subscriber)

    bus.subscribe(add_subscriber)
    bus.publish(_req(1.0))  # snapshot: new subscriber not called for this
    bus.publish(_req(2.0))
    assert [e.t_ns for e in late] == [2.0]


def test_recent_filters_by_kind_and_time():
    bus = TelemetryBus()
    bus.publish(_req(1.0))
    bus.publish(Marker(t_ns=5.0, name="m"))
    bus.publish(_req(9.0))
    assert [e.t_ns for e in bus.recent(kinds=(RequestEnd,))] == [1.0, 9.0]
    assert [e.t_ns for e in bus.recent(since_ns=5.0)] == [5.0, 9.0]


def test_to_dict_is_json_friendly():
    event = SpanEnd(
        t_ns=4.0, name="work", track="pe", start_ns=1.0, end_ns=4.0, req=7
    )
    payload = event.to_dict()
    assert payload["kind"] == "SpanEnd"
    assert payload["name"] == "work"
    assert payload["req"] == 7


def test_invalid_sizes_rejected():
    with pytest.raises(ValueError):
        TelemetryBus(capacity=0)
    with pytest.raises(ValueError):
        TelemetryBus().tail(maxlen=0)

"""ASCII timeline rendering."""

from repro.obs import SpanTracer, render_timeline
from repro.sim import Environment


def _tracer():
    tracer = SpanTracer(Environment())
    tracer.complete("alpha", "cores", 0.0, 500.0)
    tracer.complete("beta", "cores", 100.0, 400.0)  # overlaps alpha -> lane 2
    tracer.complete("gamma", "accel:gpc", 500.0, 1000.0)
    tracer.instant("mark", "accel:gpc")  # lands at env.now == 0
    return tracer


def test_render_basic_layout():
    text = render_timeline(_tracer(), width=40)
    lines = text.splitlines()
    assert lines[0].startswith("timeline 0 .. 1,000 ns")
    # Track label appears once; the overlap forces a second unlabeled lane.
    assert sum("cores" in line for line in lines) == 1
    rows = [line for line in lines[1:] if "|" in line]
    assert len(rows) >= 3  # two core lanes + one accel lane
    assert "*" in text  # instant marker
    assert "alpha" in text and "gamma" in text
    assert "=" in text


def test_req_filter_and_empty():
    env = Environment()
    tracer = SpanTracer(env)
    tracer.complete("only", "t", 0.0, 10.0)
    assert render_timeline(tracer, req=5) == "(no spans)"
    assert render_timeline(SpanTracer(env)) == "(no spans)"


def test_track_selection_orders_rows():
    text = render_timeline(_tracer(), width=30, tracks=["accel:gpc", "cores"])
    lines = [line for line in text.splitlines() if "|" in line]
    assert lines[0].startswith("accel:gpc")
    assert any(line.startswith("cores") for line in lines[1:])


def test_open_spans_are_excluded():
    tracer = SpanTracer(Environment())
    tracer.begin("pending", "t")  # never ended
    tracer.complete("done", "t", 0.0, 100.0)
    text = render_timeline(tracer, width=20)
    assert "pending" not in text
    assert "done" in text

"""Tests for the load-adaptive AccelFlow variant."""

import pytest

from repro.hw import MachineParams
from repro.hw.params import AcceleratorParams
from repro.orchestration import AdaptiveAccelFlowOrchestrator
from repro.server import SimulatedServer
from repro.workloads import Buckets, social_network_services

SERVICES = {s.name: s for s in social_network_services()}


def run_many(server, spec, count):
    requests = [server.make_request(spec) for _ in range(count)]
    procs = [server.submit(r) for r in requests]
    server.env.run(until=server.env.all_of(procs))
    return requests


class TestAdaptiveBehaviour:
    def test_registered_architecture(self):
        server = SimulatedServer("accelflow-adaptive")
        assert isinstance(server.orchestrator, AdaptiveAccelFlowOrchestrator)

    def test_no_bypass_when_idle(self):
        server = SimulatedServer("accelflow-adaptive")
        run_many(server, SERVICES["UniqId"], 3)
        assert server.orchestrator.bypasses == 0
        assert server.orchestrator.accelerated_ops > 0

    def test_bypasses_under_congestion(self):
        # Starve the accelerators: 1 PE each, everything queues.
        params = MachineParams(
            accelerator=AcceleratorParams(pes=1, input_queue_entries=64)
        )
        server = SimulatedServer("accelflow-adaptive", machine_params=params)
        requests = run_many(server, SERVICES["StoreP"], 30)
        assert all(r.completed for r in requests)
        assert server.orchestrator.bypasses > 0

    def test_bypassed_ops_charge_cpu(self):
        params = MachineParams(accelerator=AcceleratorParams(pes=1))
        server = SimulatedServer("accelflow-adaptive", machine_params=params)
        requests = run_many(server, SERVICES["StoreP"], 30)
        if server.orchestrator.bypasses:
            total_cpu = sum(r.components[Buckets.CPU] for r in requests)
            app_budget = sum(r.spec.app_logic_ns for r in requests)
            assert total_cpu > app_budget

    def test_matches_accelflow_unloaded(self):
        def latency(arch):
            server = SimulatedServer(arch, seed=9)
            (request,) = run_many(server, SERVICES["UniqId"], 1)
            return request.latency_ns

        assert latency("accelflow-adaptive") == pytest.approx(
            latency("accelflow"), rel=0.15
        )

    def test_stats_expose_bypass_fraction(self):
        server = SimulatedServer("accelflow-adaptive")
        run_many(server, SERVICES["UniqId"], 2)
        stats = server.orchestrator.stats()
        assert stats["bypass_fraction"] == 0.0
        assert stats["accelerated_ops"] > 0

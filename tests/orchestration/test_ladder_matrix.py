"""Matrix tests over the Figure 13 ladder rungs: each flag moves the
right work out of the central manager."""


from repro.server import SimulatedServer
from repro.workloads import social_network_services

SERVICES = {s.name: s for s in social_network_services()}


def run_one(arch, service="Login", seed=0):
    server = SimulatedServer(arch, seed=seed)
    request = server.make_request(SERVICES[service])
    done = server.submit(request)
    server.env.run(until=done)
    return server, request


class TestLadderMatrix:
    def test_relief_and_peracctypeq_keep_retire_hooks(self):
        for arch in ("relief", "per-acc-type-q"):
            server, _ = run_one(arch)
            hooks = [a.retire_hook for a in server.hardware.all_accelerators()]
            assert all(h is not None for h in hooks), arch

    def test_direct_rungs_drop_retire_hooks(self):
        for arch in ("direct", "cntrflow"):
            server, _ = run_one(arch)
            hooks = [a.retire_hook for a in server.hardware.all_accelerators()]
            assert all(h is None for h in hooks), arch

    def test_manager_events_fall_along_the_ladder(self):
        """Each rung strictly reduces how often the manager is involved."""
        events = {}
        for arch in ("relief", "direct", "cntrflow"):
            server, _ = run_one(arch)
            events[arch] = server.orchestrator.stats()["manager_events"]
        assert events["relief"] > events["direct"] >= events["cntrflow"]

    def test_cntrflow_resolves_branches_locally(self):
        server, _ = run_one("cntrflow", service="Login")
        glue = server.orchestrator.stats()["glue"]
        assert glue["branches_resolved"] > 0

    def test_direct_does_not_resolve_branches_locally(self):
        server, _ = run_one("direct", service="Login")
        glue = server.orchestrator.stats()["glue"]
        assert glue["branches_resolved"] == 0

    def test_central_queue_only_on_relief_base(self):
        relief_server, _ = run_one("relief")
        assert relief_server.orchestrator._admission is not None
        ptq_server, _ = run_one("per-acc-type-q")
        assert ptq_server.orchestrator._admission is None

    def test_latency_improves_along_the_ladder(self):
        from repro.server import run_unloaded

        means = {}
        for arch in ("relief", "direct", "accelflow"):
            means[arch] = run_unloaded(
                arch, SERVICES["Login"], requests=15, seed=4
            ).mean_ns()
        # The big step is Direct (no manager round trips, no memory
        # staging); AccelFlow refines further.
        assert means["direct"] < means["relief"]
        assert means["accelflow"] < means["relief"]

    def test_ladder_rung_names_are_their_configs(self):
        for arch in ("relief", "per-acc-type-q", "direct", "cntrflow"):
            server, _ = run_one(arch)
            assert server.orchestrator.name == arch
            assert server.orchestrator.config.name == arch

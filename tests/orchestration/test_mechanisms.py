"""Deeper behavioural tests: fallback, retire hooks, staged transfers,
remote boundaries, Cohort polling threads."""

import pytest

from repro.hw import AcceleratorKind, MachineParams, QueuePolicy
from repro.hw.params import AcceleratorParams
from repro.server import SimulatedServer
from repro.workloads import (
    AVERAGE_TAX_FRACTIONS,
    Buckets,
    CpuSegment,
    ServiceSpec,
    TraceInvocation,
    social_network_services,
)

K = AcceleratorKind
SERVICES = {s.name: s for s in social_network_services()}


def run_requests(server, spec, count=1):
    requests = [server.make_request(spec) for _ in range(count)]
    procs = [server.submit(r) for r in requests]
    server.env.run(until=server.env.all_of(procs))
    return requests


class TestCpuFallback:
    def tiny_machine(self):
        return MachineParams(
            accelerator=AcceleratorParams(
                pes=1, input_queue_entries=1, overflow_entries=1
            )
        )

    def test_fallback_requests_still_complete(self):
        server = SimulatedServer("accelflow", machine_params=self.tiny_machine())
        spec = SERVICES["CPost"]  # 4 concurrent chains swamp 1-entry queues
        requests = run_requests(server, spec, count=4)
        assert all(r.completed for r in requests)
        assert any(r.fell_back for r in requests)
        assert server.orchestrator.fallbacks > 0

    def test_fallback_charges_cpu_time(self):
        server = SimulatedServer("accelflow", machine_params=self.tiny_machine())
        spec = SERVICES["CPost"]
        requests = run_requests(server, spec, count=4)
        fell_back = [r for r in requests if r.fell_back]
        assert fell_back
        # Software execution of the remaining ops shows up as CPU time
        # beyond the AppLogic budget.
        for request in fell_back:
            assert request.components[Buckets.CPU] > request.spec.app_logic_ns


class TestRetireHooks:
    def test_relief_installs_retire_hook(self):
        server = SimulatedServer("relief")
        for accel in server.hardware.accelerators.values():
            assert accel.retire_hook is not None

    def test_cntrflow_has_no_retire_hook(self):
        server = SimulatedServer("cntrflow")  # direct transfers: no manager
        for accel in server.hardware.accelerators.values():
            assert accel.retire_hook is None

    def test_accelflow_has_no_retire_hook(self):
        server = SimulatedServer("accelflow")
        for accel in server.hardware.accelerators.values():
            assert accel.retire_hook is None

    def test_retire_time_charged_to_orchestration(self):
        server = SimulatedServer("relief")
        spec = SERVICES["UniqId"]
        (request,) = run_requests(server, spec)
        assert request.components[Buckets.ORCHESTRATION] > 0
        # Retire dead time must not inflate the accelerator bucket:
        # compare against an AccelFlow run of the same request shape.
        af_server = SimulatedServer("accelflow")
        (af_request,) = run_requests(af_server, spec)
        assert request.components[Buckets.ACCEL] == pytest.approx(
            af_request.components[Buckets.ACCEL], rel=0.25
        )

    def test_relief_slower_per_op_than_direct(self):
        def latency(arch):
            server = SimulatedServer(arch)
            (request,) = run_requests(server, SERVICES["UniqId"])
            return request.latency_ns

        assert latency("relief") > latency("direct")


class TestRemoteBoundaries:
    def test_t4_chain_waits_on_network(self):
        server = SimulatedServer("accelflow")
        spec = SERVICES["ReadH"]  # T4 -> T5 crosses the network
        (request,) = run_requests(server, spec)
        assert request.components[Buckets.REMOTE] > 0

    def test_error_trace_is_not_remote(self):
        """T7's exception arm chains to T_err through the ATM without a
        network wait (Ser does not start with TCP)."""
        spec = ServiceSpec(
            name="WriteFail",
            suite="test",
            total_time_ns=500_000.0,
            fractions=dict(AVERAGE_TAX_FRACTIONS),
            path=(TraceInvocation("T8"), CpuSegment()),
            rate_rps=100.0,
        )
        from repro.workloads import BranchProbabilities

        server = SimulatedServer(
            "accelflow", branch_probs=BranchProbabilities(exception=1.0)
        )
        (request,) = run_requests(server, spec)
        assert request.error
        # Exactly one remote wait happened (T8 -> T7); the T7 -> T_err
        # hand-off is an on-package ATM chain.
        assert server.orchestrator.chains_executed == 3  # T8, T7, T_err

    def test_tcp_timeout_terminates_request(self):
        from repro.workloads import RemoteLatencies

        server = SimulatedServer(
            "accelflow",
            remotes=RemoteLatencies(loss_probability=1.0),
        )
        spec = SERVICES["StoreP"]
        (request,) = run_requests(server, spec)
        assert request.timed_out
        assert request.error
        assert server.orchestrator.tcp_timeouts == 1


class TestCohortPolling:
    def test_polling_threads_limit_concurrency(self):
        from repro.orchestration.cohort import CohortOrchestrator

        server = SimulatedServer("cohort")
        orchestrator = server.orchestrator
        assert isinstance(orchestrator, CohortOrchestrator)
        assert orchestrator._pollers.capacity == CohortOrchestrator.POLLING_THREADS

    def test_linked_pairs_bypass_pollers(self):
        server = SimulatedServer("cohort")
        run_requests(server, SERVICES["UniqId"])
        stats = server.orchestrator.stats()
        assert stats["linked_hops"] > 0


class TestStagedTransfers:
    def test_relief_moves_more_bytes_than_accelflow(self):
        """Through-memory staging doubles the producer-side traffic."""

        def bytes_moved(arch):
            server = SimulatedServer(arch)
            run_requests(server, SERVICES["UniqId"], count=3)
            return server.hardware.dma.bytes_moved

        assert bytes_moved("relief") > bytes_moved("accelflow") * 1.3

    def test_direct_rung_avoids_staging(self):
        def bytes_moved(arch):
            server = SimulatedServer(arch)
            run_requests(server, SERVICES["UniqId"], count=3)
            return server.hardware.dma.bytes_moved

        assert bytes_moved("direct") < bytes_moved("relief")


class TestEdfAcrossServices:
    def test_deadline_priority_helps_short_service(self):
        """Under a shared overloaded server, EDF protects the service
        with the tighter deadline."""
        short = SERVICES["UniqId"]
        heavy = SERVICES["CPost"]

        def p99_of_short(policy):
            server = SimulatedServer("accelflow", queue_policy=policy, seed=5)
            requests = []
            procs = []
            for i in range(60):
                for spec, slo in ((short, 600_000.0), (heavy, 9_000_000.0)):
                    request = server.make_request(spec)
                    request.slo_deadline_ns = server.env.now + slo
                    requests.append(request)
                    procs.append(server.submit(request))
                server.env.run(until=server.env.now + 20_000.0)  # 50K RPS each
            server.env.run(until=server.env.all_of(procs))
            short_lat = sorted(
                r.latency_ns for r in requests if r.spec.name == "UniqId"
            )
            return short_lat[int(len(short_lat) * 0.99) - 1]

        assert p99_of_short(QueuePolicy.EDF) <= p99_of_short(QueuePolicy.FIFO)

"""Behavioural tests of the orchestration architectures."""

import pytest

from repro.hw import AcceleratorKind
from repro.orchestration import ARCHITECTURES, LADDER_VARIANTS
from repro.server import Buckets, SimulatedServer
from repro.workloads import social_network_services

K = AcceleratorKind
SERVICES = {s.name: s for s in social_network_services()}


def run_one(architecture, service="UniqId", seed=0, **server_kwargs):
    """Run a single request to completion and return (server, request)."""
    server = SimulatedServer(architecture, seed=seed, **server_kwargs)
    spec = SERVICES[service]
    request = server.make_request(spec)
    done = server.submit(request)
    server.env.run(until=done)
    return server, request


class TestArchitectureRegistry:
    def test_all_paper_architectures_present(self):
        for name in ("non-acc", "cpu-centric", "relief", "cohort", "accelflow",
                     "ideal", "per-acc-type-q", "direct", "cntrflow"):
            assert name in ARCHITECTURES

    def test_unknown_architecture_rejected(self):
        with pytest.raises(ValueError):
            SimulatedServer("warp-drive")

    def test_unknown_architecture_error_lists_ladder_variants(self):
        """The rejection names every architecture AND calls out the
        RELIEF ladder rungs, so typos like 'cntr-flow' are debuggable
        straight from the message."""
        with pytest.raises(ValueError) as excinfo:
            SimulatedServer("cntr-flow")
        message = str(excinfo.value)
        assert "'cntr-flow'" in message
        assert "ladder" in message
        for name in sorted(ARCHITECTURES):
            assert name in message
        for name in sorted(LADDER_VARIANTS):
            assert message.count(name) >= 2  # known list + ladder list

    def test_ladder_variants_configured(self):
        assert LADDER_VARIANTS["relief"].per_type_queues is False
        assert LADDER_VARIANTS["per-acc-type-q"].per_type_queues is True
        assert LADDER_VARIANTS["direct"].direct_transfers is True
        assert LADDER_VARIANTS["cntrflow"].dispatcher_branches is True


class TestRequestCompletion:
    @pytest.mark.parametrize("arch", sorted(ARCHITECTURES))
    def test_single_request_completes(self, arch):
        server, request = run_one(arch)
        assert request.completed
        assert request.latency_ns > 0

    @pytest.mark.parametrize("arch", sorted(ARCHITECTURES))
    def test_login_chain_completes(self, arch):
        server, request = run_one(arch, service="Login")
        assert request.completed
        # Login's chain includes two remote round trips (cache + DB).
        assert request.components[Buckets.REMOTE] > 0

    def test_cpost_parallel_rpcs_complete(self):
        server, request = run_one("accelflow", service="CPost")
        assert request.completed
        # 87 accelerator ops per Table IV (the most common path).
        if not request.state["exception"]:
            assert request.accelerator_ops >= 60


class TestArchitectureOrdering:
    """The headline qualitative result: AccelFlow < RELIEF/Cohort <
    CPU-Centric < Non-acc in unloaded latency."""

    def latency(self, arch, service):
        _, request = run_one(arch, service=service)
        return request.latency_ns

    @pytest.mark.parametrize("service", ["UniqId", "StoreP"])
    def test_unloaded_ordering(self, service):
        non_acc = self.latency("non-acc", service)
        cpu = self.latency("cpu-centric", service)
        relief = self.latency("relief", service)
        accelflow = self.latency("accelflow", service)
        assert accelflow < relief < cpu < non_acc

    def test_ideal_not_slower_than_accelflow(self):
        ideal = self.latency("ideal", "UniqId")
        accelflow = self.latency("accelflow", "UniqId")
        assert ideal <= accelflow * 1.02


class TestComponentAttribution:
    def test_non_acc_is_all_cpu(self):
        _, request = run_one("non-acc")
        assert request.components[Buckets.CPU] > 0
        assert request.components[Buckets.ACCEL] == 0
        assert request.components[Buckets.ORCHESTRATION] == 0

    def test_accelflow_accel_dominates_orchestration(self):
        """Fig 17: accelerator time dominates; orchestration ~2%."""
        _, request = run_one("accelflow", service="StoreP")
        accel = request.components[Buckets.ACCEL]
        orchestration = request.components[Buckets.ORCHESTRATION]
        assert accel > 0
        assert orchestration < 0.2 * accel

    def test_cpu_centric_heavy_orchestration(self):
        _, cpu_req = run_one("cpu-centric", service="StoreP")
        _, af_req = run_one("accelflow", service="StoreP")
        assert (
            cpu_req.components[Buckets.ORCHESTRATION]
            > 5 * af_req.components[Buckets.ORCHESTRATION]
        )

    def test_communication_charged_for_accel_archs(self):
        _, request = run_one("accelflow")
        assert request.components[Buckets.COMMUNICATION] > 0


class TestGlueInstrumentation:
    def test_accelflow_counts_dispatcher_ops(self):
        server, request = run_one("accelflow", service="StoreP")
        glue = server.orchestrator.glue
        assert glue.operations == request.accelerator_ops
        # Average instruction count in the paper's reported range.
        assert 15.0 <= glue.average_instructions() <= 50.0

    def test_branches_resolved_at_dispatchers(self):
        server, request = run_one("accelflow", service="Login")
        assert server.orchestrator.glue.branches_resolved > 0

    def test_atm_reads_on_chained_traces(self):
        server, request = run_one("accelflow", service="Login")
        assert server.hardware.atm.reads > 0


class TestReliefManager:
    def test_manager_busy_time_accumulates(self):
        server, request = run_one("relief", service="StoreP")
        stats = server.orchestrator.stats()
        assert stats["manager_busy_ns"] > 0
        assert stats["manager_events"] > 0

    def test_ladder_reduces_manager_load(self):
        """Moving work out of the manager shrinks its busy time."""

        def manager_busy(arch):
            server, _ = run_one(arch, service="Login")
            return server.orchestrator.stats()["manager_busy_ns"]

        relief = manager_busy("relief")
        direct = manager_busy("direct")
        cntrflow = manager_busy("cntrflow")
        assert relief > direct >= cntrflow

    def test_accelflow_has_no_manager(self):
        server, _ = run_one("accelflow")
        assert "manager_busy_ns" not in server.orchestrator.stats()


class TestCohort:
    def test_linked_and_cpu_hops_both_used(self):
        server, request = run_one("cohort", service="StoreP")
        stats = server.orchestrator.stats()
        assert stats["linked_hops"] > 0
        assert stats["cpu_hops"] > 0

    def test_custom_pairs_respected(self):
        from repro.orchestration.cohort import CohortOrchestrator

        server = SimulatedServer("cohort")
        assert isinstance(server.orchestrator, CohortOrchestrator)
        # All hand-offs unlinked when the pair set is empty.
        server.orchestrator.linked_pairs = frozenset()
        spec = SERVICES["UniqId"]
        request = server.make_request(spec)
        done = server.submit(request)
        server.env.run(until=done)
        assert server.orchestrator.linked_hops == 0
        assert server.orchestrator.cpu_hops > 0


class TestErrorPaths:
    def test_exception_requests_take_error_trace(self):
        from repro.workloads import (
            AVERAGE_TAX_FRACTIONS,
            BranchProbabilities,
            CpuSegment,
            ServiceSpec,
            TraceInvocation,
        )

        # A write whose response carries an exception: T8 -> T7 takes
        # the error arm into T_err and the request completes with error.
        spec = ServiceSpec(
            name="FailingWrite",
            suite="test",
            total_time_ns=500_000.0,
            fractions=dict(AVERAGE_TAX_FRACTIONS),
            path=(
                TraceInvocation("T8"),  # exception left to sampling
                CpuSegment(),
                TraceInvocation("T2"),
            ),
            rate_rps=100.0,
        )
        server = SimulatedServer(
            "accelflow",
            branch_probs=BranchProbabilities(exception=1.0),
        )
        request = server.make_request(spec)
        done = server.submit(request)
        server.env.run(until=done)
        assert request.completed
        assert request.error
        # The error trace notified the user without running T2.
        assert server.orchestrator.glue.notifies >= 1

    def test_tenant_limit_throttles(self):
        from repro.hw import MachineParams

        server = SimulatedServer(
            "accelflow",
            machine_params=MachineParams(tenant_trace_limit=1),
        )
        spec = SERVICES["CPost"]  # 4 parallel chains contend for 1 slot
        request = server.make_request(spec)
        done = server.submit(request)
        server.env.run(until=done)
        assert request.completed
        assert server.orchestrator.tenants.throttled > 0

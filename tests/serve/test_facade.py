"""Outcome mapping through the serving façade.

Every terminal a request can reach in the cluster — served, shed at the
front door, admitted degraded, lost to a dead fleet, or censored by the
drain deadline — must surface as the matching :class:`Response` status
on the awaited future. These tests drive a real 2-machine cluster (no
mocks) with an unpaced clock, so they are deterministic.
"""

import asyncio
import math

import pytest

from repro.cluster import ClusterConfig, MachineFailure, SimulatedCluster
from repro.cluster.admission import AdmissionConfig
from repro.obs import ObsConfig
from repro.serve import Response, ServiceFacade, SimClock, build_scorecard
from repro.serve.facade import CENSORED
from repro.workloads import social_network_services


def _services(names=("UniqId", "CPost")):
    return [s for s in social_network_services() if s.name in names]


def _facade(**config_kwargs):
    config_kwargs.setdefault("machines", 2)
    config_kwargs.setdefault("seed", 7)
    config_kwargs.setdefault("obs", ObsConfig(telemetry=True))
    config = ClusterConfig(**config_kwargs)
    return ServiceFacade.build(_services(), config), config


def _overload_admission(facade):
    """Warm the admission window with latencies far over the SLO."""
    controller = facade.cluster.admission
    for _ in range(controller.config.min_samples):
        controller.observe(100.0 * controller.config.slo_ns)
    assert controller.overloaded


# ----------------------------------------------------------------------
# Construction
# ----------------------------------------------------------------------
def test_facade_requires_telemetry_bus():
    config = ClusterConfig(machines=1, obs=None)
    with pytest.raises(ValueError, match="telemetry"):
        ServiceFacade(SimulatedCluster(config), _services())


def test_unknown_service_is_rejected():
    facade, _ = _facade()

    async def scenario():
        with pytest.raises(KeyError, match="NoSuchSvc"):
            await facade.submit("NoSuchSvc")

    asyncio.run(scenario())


# ----------------------------------------------------------------------
# Outcome mapping
# ----------------------------------------------------------------------
def test_served_request_resolves_ok():
    facade, _ = _facade()

    async def scenario():
        return await facade.submit("UniqId")

    response = asyncio.run(scenario())
    assert isinstance(response, Response)
    assert response.status == "ok"
    assert response.ok
    assert response.latency_ns > 0
    assert not response.degraded
    assert response.arrival_ns == pytest.approx(0.0)
    # The façade collected the same response synchronously.
    assert facade.responses == [response]
    assert facade.submitted == 1


def test_shed_request_resolves_with_shed_status():
    facade, _ = _facade(
        admission=AdmissionConfig(slo_ns=1e6, mode="shed", min_samples=10)
    )
    _overload_admission(facade)

    async def scenario():
        return await facade.submit("UniqId")

    response = asyncio.run(scenario())
    assert response.status == "shed"
    assert not response.ok
    assert response.latency_ns == 0.0
    assert not response.degraded


def test_degraded_request_serves_with_degraded_flag():
    facade, _ = _facade(
        admission=AdmissionConfig(slo_ns=1e6, mode="degrade", min_samples=10)
    )
    _overload_admission(facade)

    async def scenario():
        return await facade.submit("UniqId")

    response = asyncio.run(scenario())
    # Degrade admits (brown-out), so the request still completes...
    assert response.status == "ok"
    assert response.ok
    # ...but the Response records the degraded admission.
    assert response.degraded


def test_dead_fleet_resolves_lost():
    facade, _ = _facade(
        machines=1, failures=(MachineFailure(at_ns=10.0, machine=0),)
    )

    async def scenario():
        await facade.clock.advance_to(20.0)  # the only machine dies
        return await facade.submit("UniqId")

    response = asyncio.run(scenario())
    assert response.status == "lost"
    assert not response.ok
    assert response.error
    assert response.timed_out


def test_drain_deadline_censors_pending_requests():
    facade, _ = _facade()

    async def scenario():
        future = facade.submit_nowait("CPost", payload=4096)
        # A zero-length drain cannot cover any service time: the request
        # must come back censored rather than hanging forever.
        censored = await facade.drain(drain_ns=0.0)
        return censored, future.result()

    censored, response = asyncio.run(scenario())
    assert censored == 1
    assert response.status == CENSORED
    assert not response.ok
    assert response.service == "CPost"
    assert math.isnan(response.latency_ns)
    assert not facade._waiters


def test_drive_until_reports_dry_calendar():
    facade, _ = _facade()

    async def scenario():
        return await facade.drive_until(lambda: False)

    assert asyncio.run(scenario()) is False


# ----------------------------------------------------------------------
# Folding / scorecard
# ----------------------------------------------------------------------
def test_fold_matches_facade_counts():
    facade, config = _facade()

    async def scenario():
        for _ in range(5):
            await facade.submit("UniqId")
        await facade.drain()

    asyncio.run(scenario())
    result = facade.fold(config)
    assert result.arrivals == 5
    assert result.completed == 5
    assert "UniqId" in result.services


def test_scorecard_folds_mixed_outcomes():
    responses = [
        Response("Svc", "ok", True, 2000.0, 0.0, 1),
        Response("Svc", "ok", True, 4000.0, 10.0, 2, degraded=True),
        Response("Svc", "shed", False, 0.0, 20.0, 3),
        Response("Svc", "lost", False, 0.0, 30.0, 4),
        Response("Svc", CENSORED, False, float("nan"), 40.0, 5),
    ]
    card = build_scorecard(responses, elapsed_ns=1e9, alerts_fired=2)
    assert card["submitted"] == 5
    assert card["ok"] == 2
    assert card["shed"] == 1
    assert card["lost"] == 1
    assert card["censored"] == 1
    assert card["degraded"] == 1
    assert card["availability"] == pytest.approx(0.4)
    assert card["achieved_rps"] == pytest.approx(2.0)
    assert card["alerts_fired"] == 2
    assert "alerts fired 2" in card["table"]
    # NaN censored latencies never leak into the percentile columns
    # (interpolated P99 of the two finite latencies, 2 us and 4 us).
    assert card["p99_us"] == pytest.approx(3.98, rel=1e-3)


def test_scorecard_handles_empty_run():
    card = build_scorecard([], elapsed_ns=0.0)
    assert card["submitted"] == 0
    assert card["achieved_rps"] == 0.0
    assert "Achieved RPS" in card["table"]


# ----------------------------------------------------------------------
# Clock
# ----------------------------------------------------------------------
def test_unpaced_clock_never_reads_the_wall():
    facade, _ = _facade()
    assert not facade.clock.paced
    assert facade.clock.wall_elapsed_s == 0.0

    async def scenario():
        await facade.clock.advance_to(5e6)

    asyncio.run(scenario())
    assert facade.env.now == 5e6
    # advance_to never pinned a wall origin in unpaced mode.
    assert facade.clock.wall_elapsed_s == 0.0
    assert facade.clock.max_lag_ns == 0.0


def test_paced_clock_advances_and_tracks_stats():
    facade, _ = _facade()
    # Enormous dilation: paced code paths run, but the wall wait for a
    # few sim milliseconds is microscopic — the test stays fast.
    facade.clock = SimClock(facade.env, dilation=1e6)

    async def scenario():
        response = await facade.submit("UniqId")
        await facade.clock.advance_to(2e6)
        return response

    response = asyncio.run(scenario())
    assert response.status == "ok"
    assert facade.env.now >= 2e6
    stats = facade.clock.stats()
    assert stats["paced"] is True
    assert stats["wall_elapsed_s"] > 0.0


def test_clock_rejects_nonpositive_dilation():
    facade, _ = _facade()
    with pytest.raises(ValueError, match="dilation"):
        SimClock(facade.env, dilation=0.0)

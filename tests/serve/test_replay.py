"""Replay driver: traces, the CLI, and the determinism contract.

The headline acceptance test: ``--dilation inf`` makes zero wall-clock
reads, so two CLI runs with the same arguments must print
byte-identical scorecards.
"""

import asyncio

import pytest

from repro.serve import replay
from repro.serve.replay import (
    build_serving_stack,
    load_trace,
    pick_services,
    replay_trace,
    save_trace,
    synthetic_trace,
)


def _cli(capsys, argv):
    assert replay.main(argv) == 0
    return capsys.readouterr().out


# ----------------------------------------------------------------------
# Traces
# ----------------------------------------------------------------------
def test_synthetic_trace_is_deterministic_and_sorted():
    services = pick_services("UniqId,CPost")
    first = synthetic_trace(services, requests_per_service=20, seed=3)
    second = synthetic_trace(services, requests_per_service=20, seed=3)
    assert first == second
    assert len(first) == 40
    assert first == sorted(first)
    assert synthetic_trace(services, requests_per_service=20, seed=4) != first


def test_trace_roundtrips_through_jsonl(tmp_path):
    trace = synthetic_trace(pick_services("UniqId"), requests_per_service=15)
    path = str(tmp_path / "trace.jsonl")
    save_trace(path, trace)
    assert load_trace(path) == trace


def test_load_trace_rejects_malformed_lines(tmp_path):
    path = tmp_path / "bad.jsonl"
    path.write_text('{"t_ns": 1.0, "service": "UniqId"}\n{"t_ns": 2.0}\n')
    with pytest.raises(ValueError, match="bad.jsonl:2"):
        load_trace(str(path))


# ----------------------------------------------------------------------
# Determinism (the CI contract)
# ----------------------------------------------------------------------
def test_unpaced_cli_runs_are_byte_identical(capsys):
    argv = ["--dilation", "inf", "--requests", "25", "--seed", "3"]
    first = _cli(capsys, argv)
    second = _cli(capsys, argv)
    assert first == second
    assert "Replay scorecard" in first
    assert "Achieved RPS" in first
    # Pacing stats read the wall clock; unpaced output must omit them.
    assert "Pacing:" not in first


def test_replay_trace_scorecards_are_identical_across_runs():
    def run_once():
        services = pick_services(None)
        facade = build_serving_stack(services, seed=11)
        trace = synthetic_trace(
            services, requests_per_service=15, seed=11
        )
        return asyncio.run(replay_trace(facade, trace))

    first, second = run_once(), run_once()
    assert first == second
    assert first["submitted"] == 45


# ----------------------------------------------------------------------
# CLI plumbing
# ----------------------------------------------------------------------
def test_cli_saves_and_replays_a_trace(capsys, tmp_path):
    trace_path = str(tmp_path / "recorded.jsonl")
    recorded = _cli(
        capsys,
        ["--requests", "10", "--seed", "5", "--save-trace", trace_path],
    )
    replayed = _cli(capsys, ["--trace", trace_path, "--seed", "5"])
    assert load_trace(trace_path)  # the recording landed on disk
    # Same arrivals either way, so the scorecards agree byte for byte.
    assert recorded == replayed


def test_cli_latency_log_has_one_line_per_response(capsys, tmp_path):
    log_path = tmp_path / "latencies.log"
    out = _cli(
        capsys,
        ["--requests", "8", "--services", "UniqId",
         "--log-latencies", str(log_path)],
    )
    lines = log_path.read_text().splitlines()
    assert len(lines) == 8
    assert all("UniqId" in line for line in lines)
    assert "Replay scorecard" in out


def test_cli_rejects_trace_with_unknown_services(tmp_path):
    path = tmp_path / "alien.jsonl"
    path.write_text('{"t_ns": 1.0, "service": "NotAService"}\n')
    with pytest.raises(SystemExit, match="NotAService"):
        replay.main(["--trace", str(path)])


def test_cli_rejects_nonpositive_dilation():
    with pytest.raises(SystemExit):
        replay.main(["--dilation", "0"])


def test_paced_replay_matches_unpaced_sim_side():
    # Pacing decides *when* the kernel is stepped, never *how*: the
    # paced run must reach the same outcomes as the unpaced one.
    services = pick_services("UniqId")
    trace = synthetic_trace(services, requests_per_service=6, seed=2)

    def outcomes(dilation):
        facade = build_serving_stack(services, seed=2, dilation=dilation)
        asyncio.run(replay_trace(facade, trace))
        return [
            (r.service, r.status, r.latency_ns) for r in facade.responses
        ]

    # Huge dilation: the paced path runs with negligible wall waiting.
    assert outcomes(float("inf")) == outcomes(1e6)

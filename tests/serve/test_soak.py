"""Soak runner: the wall-clock acceptance smoke.

The slow test sustains open-loop load on a 2-machine fleet for at least
two wall-clock seconds with the live dashboard attached — the ISSUE's
acceptance criterion for the serving façade.
"""

import asyncio
import io
import time

import pytest

from repro.serve.replay import build_serving_stack, pick_services
from repro.serve.soak import SoakConfig, run_soak


def test_soak_requires_a_paced_clock():
    services = pick_services("UniqId")
    facade = build_serving_stack(services, dilation=float("inf"))
    with pytest.raises(ValueError, match="finite dilation"):
        asyncio.run(run_soak(services, facade))


@pytest.mark.slow
def test_soak_smoke_sustains_two_wall_seconds():
    services = pick_services("UniqId,CPost")
    facade = build_serving_stack(
        services, machines=2, seed=0, dilation=5.0, admission="shed"
    )
    config = SoakConfig(
        wall_seconds=2.1,
        dilation=5.0,
        refresh_wall_s=0.5,
        rate_rps=300.0,
        drain_ns=50e6,
    )
    out = io.StringIO()
    start = time.monotonic()
    scorecard = asyncio.run(run_soak(services, facade, config, out=out))
    wall = time.monotonic() - start

    # The fleet was driven for the full wall-clock window.
    assert wall >= 2.0
    assert scorecard["pacing"]["wall_elapsed_s"] >= 2.0
    assert scorecard["pacing"]["paced"] is True

    # Load actually flowed and resolved.
    assert scorecard["submitted"] > 0
    assert scorecard["ok"] > 0
    assert scorecard["submitted"] == len(facade.responses)
    assert not facade._waiters  # nothing left hanging after the drain

    # The live dashboard refreshed during the run and closed with a
    # final snapshot riding on the scorecard.
    assert "fleet telemetry" in out.getvalue()
    assert "fleet telemetry" in scorecard["dashboard"]
    assert "Soak scorecard" in scorecard["table"]
    assert "Achieved RPS" in scorecard["table"]

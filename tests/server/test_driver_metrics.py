"""Integration tests for the experiment driver and metrics."""

import pytest

from repro.server import (
    Buckets,
    RunConfig,
    SimulatedServer,
    energy_summary,
    max_throughput_search,
    run_experiment,
    run_unloaded,
)
from repro.workloads import social_network_services

SERVICES = social_network_services()
BY_NAME = {s.name: s for s in SERVICES}


def small_config(arch, **kwargs):
    defaults = dict(
        architecture=arch,
        requests_per_service=40,
        arrival_mode="poisson",
        rate_rps=2000.0,
        warmup_fraction=0.0,
    )
    defaults.update(kwargs)
    return RunConfig(**defaults)


class TestRequest:
    def test_latency_requires_completion(self):
        server = SimulatedServer("accelflow")
        request = server.make_request(BY_NAME["UniqId"])
        with pytest.raises(ValueError):
            _ = request.latency_ns

    def test_component_fractions_sum_to_one(self):
        server = SimulatedServer("accelflow")
        request = server.make_request(BY_NAME["UniqId"])
        done = server.submit(request)
        server.env.run(until=done)
        fractions = [request.component_fraction(b) for b in Buckets.ALL]
        assert sum(fractions) == pytest.approx(1.0)

    def test_request_ids_unique(self):
        server = SimulatedServer("accelflow")
        a = server.make_request(BY_NAME["UniqId"])
        b = server.make_request(BY_NAME["UniqId"])
        assert a.rid != b.rid


class TestRunUnloaded:
    def test_all_requests_complete(self):
        result = run_unloaded("accelflow", BY_NAME["UniqId"], requests=10)
        assert result.completed == 10
        assert result.censored == 0

    def test_unloaded_latency_near_service_scale(self):
        result = run_unloaded("non-acc", BY_NAME["UniqId"], requests=15)
        # UniqId is a 280 us service; software execution plus payload
        # variation lands in the same order of magnitude.
        assert 100_000 < result.mean_ns() < 1_500_000

    def test_deterministic_given_seed(self):
        a = run_unloaded("accelflow", BY_NAME["StoreP"], requests=8, seed=42)
        b = run_unloaded("accelflow", BY_NAME["StoreP"], requests=8, seed=42)
        assert a.recorder.samples == b.recorder.samples

    def test_different_seeds_differ(self):
        a = run_unloaded("accelflow", BY_NAME["StoreP"], requests=8, seed=1)
        b = run_unloaded("accelflow", BY_NAME["StoreP"], requests=8, seed=2)
        assert a.recorder.samples != b.recorder.samples


class TestRunExperiment:
    def test_dedicated_mode_covers_all_services(self):
        subset = [BY_NAME["UniqId"], BY_NAME["StoreP"]]
        result = run_experiment(subset, small_config("accelflow"))
        assert set(result.services) == {"UniqId", "StoreP"}
        assert result.total_completed() == 80

    def test_colocated_mode_shares_server(self):
        subset = [BY_NAME["UniqId"], BY_NAME["StoreP"]]
        result = run_experiment(subset, small_config("accelflow", colocated=True))
        assert result.total_completed() == 80
        # Colocated runs have one flat hardware stats dict.
        assert "cores" in result.hardware_stats

    def test_aggregates(self):
        subset = [BY_NAME["UniqId"]]
        result = run_experiment(subset, small_config("accelflow"))
        assert result.mean_p99_ns() >= result.services["UniqId"].mean_ns()
        assert result.achieved_rps() > 0
        assert 0 <= result.orchestration_fraction() < 1

    def test_invalid_arrival_mode(self):
        with pytest.raises(ValueError):
            run_experiment(
                [BY_NAME["UniqId"]], small_config("accelflow", arrival_mode="steady")
            )

    def test_higher_load_does_not_lower_latency(self):
        light = run_experiment(
            [BY_NAME["UniqId"]], small_config("non-acc", rate_rps=2000.0)
        )
        heavy = run_experiment(
            [BY_NAME["UniqId"]],
            small_config("non-acc", rate_rps=250_000.0, requests_per_service=400),
        )
        assert heavy.p99_ns("UniqId") > light.p99_ns("UniqId")

    def test_censoring_under_overload(self):
        # Far beyond capacity with a short drain: some requests cannot
        # finish and must be counted as censored, not dropped.
        config = small_config(
            "non-acc",
            rate_rps=500_000.0,
            requests_per_service=300,
            drain_ns=1e6,
        )
        result = run_experiment([BY_NAME["CPost"]], config)
        assert result.total_censored() > 0


class TestEnergySummary:
    def test_colocated_energy_breakdown(self):
        result = run_experiment(
            [BY_NAME["UniqId"]], small_config("accelflow", colocated=True)
        )
        energy = energy_summary(result)
        assert energy["total_j"] > 0
        assert energy["core_j"] > 0
        assert energy["perf_per_watt"] > 0
        assert energy["total_j"] == pytest.approx(
            energy["core_j"] + energy["accel_j"] + energy["orchestration_j"]
        )

    def test_accelflow_uses_less_energy_than_non_acc(self):
        def total_j(arch):
            result = run_experiment(
                [BY_NAME["StoreP"]],
                small_config(arch, colocated=True, requests_per_service=60),
            )
            return energy_summary(result)["total_j"] / result.total_completed()

        assert total_j("accelflow") < total_j("non-acc")


class TestThroughputSearch:
    def test_finds_higher_capacity_for_accelflow(self):
        spec = BY_NAME["UniqId"]
        unloaded_af = run_unloaded("accelflow", spec, requests=10).mean_ns()
        unloaded_na = run_unloaded("non-acc", spec, requests=10).mean_ns()
        af = max_throughput_search(
            "accelflow", spec, slo_ns=5 * unloaded_af, requests=60, iterations=5
        )
        na = max_throughput_search(
            "non-acc", spec, slo_ns=5 * unloaded_na, requests=60, iterations=5
        )
        assert af > na

    def test_returns_lo_when_already_violating(self):
        spec = BY_NAME["UniqId"]
        rate = max_throughput_search(
            "non-acc", spec, slo_ns=1.0, requests=30, lo_rps=100.0, iterations=3
        )
        assert rate == 100.0

"""End-to-end tests for priority-class scheduling (Section IV-C)."""

import dataclasses

import pytest

from repro.hw import QueuePolicy
from repro.server import RunConfig, SimulatedServer, run_experiment
from repro.workloads import social_network_services

SERVICES = {s.name: s for s in social_network_services()}


def tagged(name, priority):
    return dataclasses.replace(SERVICES[name], priority=priority)


class TestPriorityPlumbing:
    def test_spec_priority_reaches_request(self):
        server = SimulatedServer("accelflow", queue_policy=QueuePolicy.PRIORITY)
        spec = tagged("UniqId", 3)
        request = server.make_request(spec)
        assert request.priority == 3

    def test_priority_reaches_queue_entries(self):
        server = SimulatedServer("accelflow", queue_policy=QueuePolicy.PRIORITY)
        spec = tagged("UniqId", 2)
        request = server.make_request(spec)
        done = server.submit(request)
        server.env.run(until=done)
        assert request.completed


class TestPriorityEffect:
    def test_high_priority_class_gets_shorter_tail(self):
        """Two copies of the same workload, one tagged urgent: under a
        shared overloaded server the urgent class finishes first."""
        urgent = dataclasses.replace(
            tagged("StoreP", 0), name="StoreP-hi", rate_rps=20000.0
        )
        background = dataclasses.replace(
            tagged("StoreP", 9), name="StoreP-lo", rate_rps=20000.0
        )
        config = RunConfig(
            architecture="accelflow",
            requests_per_service=250,
            arrival_mode="poisson",
            rate_scale=3.0,  # push the accelerator queues into backlog
            colocated=True,
            queue_policy=QueuePolicy.PRIORITY,
            warmup_fraction=0.0,
        )
        result = run_experiment([urgent, background], config)
        assert result.p99_ns("StoreP-hi") < result.p99_ns("StoreP-lo")

    def test_fifo_treats_classes_equally(self):
        urgent = dataclasses.replace(
            tagged("StoreP", 0), name="StoreP-hi", rate_rps=20000.0
        )
        background = dataclasses.replace(
            tagged("StoreP", 9), name="StoreP-lo", rate_rps=20000.0
        )
        config = RunConfig(
            architecture="accelflow",
            requests_per_service=250,
            arrival_mode="poisson",
            rate_scale=3.0,
            colocated=True,
            queue_policy=QueuePolicy.FIFO,
            warmup_fraction=0.0,
        )
        result = run_experiment([urgent, background], config)
        hi = result.p99_ns("StoreP-hi")
        lo = result.p99_ns("StoreP-lo")
        assert hi == pytest.approx(lo, rel=0.35)

"""Unit tests for the discrete-event kernel."""

import pytest

from repro.sim import Environment, Interrupt, SimulationError


def test_clock_starts_at_zero():
    env = Environment()
    assert env.now == 0.0


def test_clock_custom_initial_time():
    env = Environment(initial_time=42.0)
    assert env.now == 42.0


def test_timeout_advances_clock():
    env = Environment()

    def proc(env):
        yield env.timeout(5.0)

    env.process(proc(env))
    env.run()
    assert env.now == 5.0


def test_negative_timeout_rejected():
    env = Environment()
    with pytest.raises(ValueError):
        env.timeout(-1.0)


def test_timeout_carries_value():
    env = Environment()
    result = []

    def proc(env):
        value = yield env.timeout(1.0, value="hello")
        result.append(value)

    env.process(proc(env))
    env.run()
    assert result == ["hello"]


def test_sequential_timeouts_accumulate():
    env = Environment()
    times = []

    def proc(env):
        for delay in (1.0, 2.0, 3.0):
            yield env.timeout(delay)
            times.append(env.now)

    env.process(proc(env))
    env.run()
    assert times == [1.0, 3.0, 6.0]


def test_process_return_value():
    env = Environment()

    def proc(env):
        yield env.timeout(1.0)
        return 123

    p = env.process(proc(env))
    env.run()
    assert p.value == 123


def test_run_until_event_returns_its_value():
    env = Environment()

    def proc(env):
        yield env.timeout(2.0)
        return "finished"

    p = env.process(proc(env))
    assert env.run(until=p) == "finished"


def test_run_until_time_stops_clock_exactly():
    env = Environment()

    def proc(env):
        while True:
            yield env.timeout(10.0)

    env.process(proc(env))
    env.run(until=25.0)
    assert env.now == 25.0


def test_run_until_past_time_rejected():
    env = Environment()

    def proc(env):
        yield env.timeout(10.0)

    env.process(proc(env))
    env.run(until=5.0)
    with pytest.raises(ValueError):
        env.run(until=1.0)


def test_two_processes_interleave():
    env = Environment()
    order = []

    def proc(env, name, delay):
        yield env.timeout(delay)
        order.append(name)

    env.process(proc(env, "slow", 2.0))
    env.process(proc(env, "fast", 1.0))
    env.run()
    assert order == ["fast", "slow"]


def test_same_time_events_fifo():
    env = Environment()
    order = []

    def proc(env, name):
        yield env.timeout(1.0)
        order.append(name)

    for name in ("a", "b", "c"):
        env.process(proc(env, name))
    env.run()
    assert order == ["a", "b", "c"]


def test_event_succeed_wakes_waiter():
    env = Environment()
    done = env.event()
    log = []

    def waiter(env):
        value = yield done
        log.append(value)

    def trigger(env):
        yield env.timeout(3.0)
        done.succeed("payload")

    env.process(waiter(env))
    env.process(trigger(env))
    env.run()
    assert log == ["payload"]
    assert env.now == 3.0


def test_event_double_trigger_rejected():
    env = Environment()
    ev = env.event()
    ev.succeed()
    with pytest.raises(SimulationError):
        ev.succeed()


def test_event_fail_propagates_into_process():
    env = Environment()
    failing = env.event()
    caught = []

    def waiter(env):
        try:
            yield failing
        except RuntimeError as err:
            caught.append(str(err))

    env.process(waiter(env))
    failing.fail(RuntimeError("boom"))
    env.run()
    assert caught == ["boom"]


def test_unhandled_failure_propagates_out_of_run():
    env = Environment()

    def proc(env):
        yield env.timeout(1.0)
        raise ValueError("unhandled")

    env.process(proc(env))
    with pytest.raises(ValueError, match="unhandled"):
        env.run()


def test_fail_requires_exception():
    env = Environment()
    ev = env.event()
    with pytest.raises(TypeError):
        ev.fail("not an exception")


def test_process_waits_on_another_process():
    env = Environment()

    def child(env):
        yield env.timeout(4.0)
        return "child-result"

    def parent(env):
        value = yield env.process(child(env))
        return value

    p = env.process(parent(env))
    env.run()
    assert p.value == "child-result"


def test_yield_already_processed_event_resumes_immediately():
    env = Environment()
    log = []

    def child(env):
        yield env.timeout(1.0)
        return "early"

    def parent(env, child_proc):
        yield env.timeout(10.0)
        value = yield child_proc  # already finished
        log.append((env.now, value))

    c = env.process(child(env))
    env.process(parent(env, c))
    env.run()
    assert log == [(10.0, "early")]


def test_all_of_waits_for_all():
    env = Environment()

    def proc(env):
        t1 = env.timeout(1.0, value="a")
        t2 = env.timeout(5.0, value="b")
        result = yield env.all_of([t1, t2])
        return (env.now, sorted(result.todict().values()))

    p = env.process(proc(env))
    env.run()
    assert p.value == (5.0, ["a", "b"])


def test_any_of_fires_on_first():
    env = Environment()

    def proc(env):
        t1 = env.timeout(1.0, value="fast")
        t2 = env.timeout(5.0, value="slow")
        result = yield env.any_of([t1, t2])
        return (env.now, list(result.todict().values()))

    p = env.process(proc(env))
    env.run()
    assert p.value == (1.0, ["fast"])


def test_and_operator():
    env = Environment()

    def proc(env):
        yield env.timeout(1.0) & env.timeout(2.0)
        return env.now

    p = env.process(proc(env))
    env.run()
    assert p.value == 2.0


def test_or_operator():
    env = Environment()

    def proc(env):
        yield env.timeout(1.0) | env.timeout(2.0)
        return env.now

    p = env.process(proc(env))
    env.run()
    assert p.value == 1.0


def test_empty_all_of_triggers_immediately():
    env = Environment()

    def proc(env):
        yield env.all_of([])
        return env.now

    p = env.process(proc(env))
    env.run()
    assert p.value == 0.0


def test_interrupt_delivers_cause():
    env = Environment()
    log = []

    def victim(env):
        try:
            yield env.timeout(100.0)
        except Interrupt as interrupt:
            log.append((env.now, interrupt.cause))

    def attacker(env, victim_proc):
        yield env.timeout(2.0)
        victim_proc.interrupt(cause="preempted")

    v = env.process(victim(env))
    env.process(attacker(env, v))
    env.run()
    assert log == [(2.0, "preempted")]


def test_interrupt_dead_process_is_noop():
    env = Environment()

    def victim(env):
        yield env.timeout(1.0)

    v = env.process(victim(env))
    env.run()
    # Interrupting a terminated process is a documented safe no-op.
    v.interrupt()
    v.interrupt("twice is fine too")
    assert not v.is_alive


def test_double_interrupt_delivers_once():
    env = Environment()
    hits = []

    def victim(env):
        try:
            yield env.timeout(100.0)
        except Interrupt as interrupt:
            hits.append(interrupt.cause)
        yield env.timeout(50.0)

    def attacker(env, v):
        yield env.timeout(2.0)
        v.interrupt(cause="first")
        v.interrupt(cause="second")  # collapses into the in-flight one

    v = env.process(victim(env))
    env.process(attacker(env, v))
    env.run()
    assert hits == ["first"]


def test_interrupt_racing_with_completion_is_noop():
    env = Environment()
    outcomes = []

    def victim(env):
        yield env.timeout(2.0)
        outcomes.append("done")

    def attacker(env, v):
        yield env.timeout(2.0)
        v.interrupt()  # same instant as victim completion

    v = env.process(victim(env))
    env.process(attacker(env, v))
    env.run()
    assert outcomes == ["done"]


def test_interrupt_cancels_pending_store_get():
    from repro.sim import Store

    env = Environment()

    def getter(env, store):
        try:
            yield store.get()
        except Interrupt:
            pass
        yield env.timeout(1.0)

    def attacker(env, v):
        yield env.timeout(1.0)
        v.interrupt()

    store = Store(env, capacity=1)
    v = env.process(getter(env, store))
    env.process(attacker(env, v))
    env.run()
    # The dead getter's waiter was withdrawn: a later put is not consumed
    # by a ghost and the item stays available.
    assert not store._get_waiters
    assert store.try_put("item")
    assert list(store.items) == ["item"]


def test_self_interrupt_rejected():
    env = Environment()
    errors = []

    def proc(env):
        me = env.active_process
        try:
            me.interrupt()
        except SimulationError:
            errors.append(True)
        yield env.timeout(0)

    env.process(proc(env))
    env.run()
    assert errors == [True]


def test_interrupted_process_can_continue():
    env = Environment()

    def victim(env):
        try:
            yield env.timeout(100.0)
        except Interrupt:
            pass
        yield env.timeout(5.0)
        return env.now

    def attacker(env, v):
        yield env.timeout(1.0)
        v.interrupt()

    v = env.process(victim(env))
    env.process(attacker(env, v))
    env.run()
    assert v.value == 6.0


def test_is_alive_transitions():
    env = Environment()

    def proc(env):
        yield env.timeout(1.0)

    p = env.process(proc(env))
    assert p.is_alive
    env.run()
    assert not p.is_alive


def test_yield_non_event_fails_process():
    env = Environment()

    def proc(env):
        yield 42

    env.process(proc(env))
    with pytest.raises(SimulationError, match="non-event"):
        env.run()


def test_peek_and_step():
    env = Environment()
    env.timeout(7.0)
    assert env.peek() == 7.0
    env.step()
    assert env.now == 7.0
    assert env.peek() == float("inf")


def test_step_with_no_events_raises():
    env = Environment()
    with pytest.raises(SimulationError):
        env.step()


def test_value_before_trigger_raises():
    env = Environment()
    ev = env.event()
    with pytest.raises(SimulationError):
        _ = ev.value
    with pytest.raises(SimulationError):
        _ = ev.ok


def test_run_until_untriggered_event_raises():
    env = Environment()
    ev = env.event()  # nothing will ever trigger it
    with pytest.raises(SimulationError):
        env.run(until=ev)


def test_many_processes_scale():
    env = Environment()
    done = []

    def proc(env, i):
        yield env.timeout(float(i % 10))
        done.append(i)

    for i in range(1000):
        env.process(proc(env, i))
    env.run()
    assert len(done) == 1000


# -- runaway guard -----------------------------------------------------------


def _ticker(env):
    while True:
        yield env.timeout(1.0)


def test_runaway_guard_off_by_default():
    saved = (Environment.default_max_events, Environment.default_max_wall_s)
    Environment.default_max_events = None
    Environment.default_max_wall_s = None
    try:
        env = Environment()
        assert env.max_events is None
        assert env.max_wall_s is None
    finally:
        Environment.default_max_events, Environment.default_max_wall_s = saved


def test_runaway_guard_trips_on_event_budget():
    env = Environment(max_events=500)
    env.process(_ticker(env))
    with pytest.raises(SimulationError, match="runaway guard"):
        env.run()


def test_runaway_guard_spares_bounded_runs():
    env = Environment(max_events=500)
    done = []

    def proc(env):
        for _ in range(100):
            yield env.timeout(1.0)
        done.append(True)

    env.process(proc(env))
    env.run()
    assert done == [True]


def test_runaway_guard_class_default_applies():
    saved = Environment.default_max_events
    Environment.default_max_events = 200
    try:
        env = Environment()
        assert env.max_events == 200
        env.process(_ticker(env))
        with pytest.raises(SimulationError, match="runaway guard"):
            env.run()
    finally:
        Environment.default_max_events = saved


def test_runaway_guard_explicit_overrides_class_default():
    saved = Environment.default_max_events
    Environment.default_max_events = 200
    try:
        # An explicit (larger) budget wins over the class default: this
        # run processes far more than 200 events and still completes.
        env = Environment(max_events=100_000)
        env.process(_ticker(env))
        env.run(until=env.timeout(5_000.0))
        assert env.now == 5_000.0
    finally:
        Environment.default_max_events = saved


def test_runaway_wall_clock_guard_trips():
    env = Environment(max_wall_s=0.0)  # deadline already passed
    env.process(_ticker(env))
    with pytest.raises(SimulationError, match="runaway guard"):
        env.run(until=env.timeout(10_000.0))

"""Tests for kernel extras: Store.remove, SlidingWindow, edge cases."""

import pytest

from repro.sim import Environment, Store
from repro.sim.monitor import SlidingWindow


class TestStoreRemove:
    def test_remove_specific_item(self):
        env = Environment()
        store = Store(env)
        a, b, c = object(), object(), object()
        for item in (a, b, c):
            store.try_put(item)
        assert store.remove(b)
        assert list(store.items) == [a, c]

    def test_remove_missing_returns_false(self):
        env = Environment()
        store = Store(env)
        store.try_put("x")
        assert not store.remove("y")

    def test_remove_matches_identity_not_equality(self):
        env = Environment()
        store = Store(env)
        first, second = [1], [1]  # equal but distinct
        store.try_put(first)
        store.try_put(second)
        assert store.remove(second)
        assert store.items[0] is first

    def test_remove_unblocks_putter(self):
        env = Environment()
        store = Store(env, capacity=1)
        blocker = object()
        store.try_put(blocker)
        done = []

        def producer(env):
            yield store.put("waiting")
            done.append(env.now)

        def remover(env):
            yield env.timeout(5.0)
            store.remove(blocker)

        env.process(producer(env))
        env.process(remover(env))
        env.run()
        assert done == [5.0]
        assert list(store.items) == ["waiting"]


class TestSlidingWindow:
    def test_capacity_positive(self):
        with pytest.raises(ValueError):
            SlidingWindow(0)

    def test_empty_mean_is_none(self):
        assert SlidingWindow(3).mean() is None

    def test_mean_over_window(self):
        window = SlidingWindow(3)
        for value in (1.0, 2.0, 3.0):
            window.push(value)
        assert window.mean() == pytest.approx(2.0)

    def test_old_values_evicted(self):
        window = SlidingWindow(2)
        for value in (10.0, 1.0, 3.0):
            window.push(value)
        assert len(window) == 2
        assert window.mean() == pytest.approx(2.0)


class TestEnvironmentEdgeCases:
    def test_run_until_event_already_processed(self):
        env = Environment()

        def quick(env):
            yield env.timeout(1.0)
            return "v"

        p = env.process(quick(env))
        env.run()
        # Running until an already-processed event returns its value.
        assert env.run(until=p) == "v"

    def test_condition_failure_propagates(self):
        env = Environment()

        def failing(env):
            yield env.timeout(1.0)
            raise RuntimeError("inner")

        def waiter(env, proc):
            try:
                yield env.all_of([proc, env.timeout(5.0)])
            except RuntimeError:
                return "caught"
            return "missed"

        p = env.process(failing(env))
        w = env.process(waiter(env, p))
        env.run()
        assert w.value == "caught"

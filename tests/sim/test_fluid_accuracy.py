"""Differential fluid-vs-DES validation harness.

Three layers of evidence that the fluid tier is trustworthy:

1. **Analytical properties** (Hypothesis): the fluid stepper driven by
   constant-rate arrival impulses converges to the closed-form M/M/k
   steady state (utilization, throughput, mean latency), and mass is
   conserved under arbitrary arrive/step/remove sequences.
2. **Differential runs**: on small CRN-seeded cluster configs where the
   full DES is cheap, a half-fluid fleet must match the exact run
   within the documented :data:`repro.cluster.fluid.FLUID_TOLERANCES`
   bands for completed work (throughput), merged mean latency, and the
   jobs-in-system integral (utilization); seeds 0-2 are the CI matrix.
3. **Degenerate and scale limits**: a fluid config with zero fluid
   machines is byte-identical to pure DES, and a fleet-scale run with
   >=80% of machines fluid is at least 5x faster in wall-clock time.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import (
    FLUID_TOLERANCES,
    ClusterConfig,
    FluidConfig,
    run_cluster,
)
from repro.sim import (
    Environment,
    FluidQueue,
    FluidStepper,
    Stream,
    erlang_b,
    erlang_c,
    mmk_steady_state,
)
from repro.workloads import social_network_services

ALL_SERVICES = {s.name: s for s in social_network_services()}


def services(*names):
    return [ALL_SERVICES[name] for name in names]


# ---------------------------------------------------------------------------
# Closed forms
# ---------------------------------------------------------------------------
class TestClosedForms:
    def test_erlang_b_textbook_value(self):
        # Classic tables: k=5 servers, 3 Erlangs offered -> B ~ 0.11005.
        assert erlang_b(5, 3.0) == pytest.approx(0.11005, abs=1e-4)

    def test_erlang_c_single_server_is_rho(self):
        # M/M/1: the wait probability equals the utilization.
        for rho in (0.1, 0.5, 0.9):
            assert erlang_c(1, rho) == pytest.approx(rho, rel=1e-9)

    def test_erlang_c_saturated_is_one(self):
        assert erlang_c(4, 4.0) == 1.0
        assert erlang_c(4, 7.5) == 1.0

    def test_mm1_closed_form(self):
        # M/M/1 at rho=0.5: W = 1/(mu - lam).
        mu, lam = 1e-3, 0.5e-3
        st_ = mmk_steady_state(lam, mu, 1)
        assert st_.mean_latency_ns == pytest.approx(1.0 / (mu - lam), rel=1e-9)
        assert st_.mean_jobs == pytest.approx(lam / (mu - lam), rel=1e-9)

    def test_unstable_point_is_infinite(self):
        st_ = mmk_steady_state(2e-3, 1e-3, 2)
        assert st_.utilization == 1.0
        assert math.isinf(st_.mean_latency_ns)


# ---------------------------------------------------------------------------
# Property: the stepper matches the M/M/k steady state
# ---------------------------------------------------------------------------
class TestSteadyStateProperty:
    @settings(max_examples=15, deadline=None)
    @given(
        rho=st.floats(min_value=0.15, max_value=0.85),
        servers=st.integers(min_value=1, max_value=8),
        quantum_frac=st.floats(min_value=0.05, max_value=0.5),
    )
    def test_constant_arrivals_converge_to_closed_form(
        self, rho, servers, quantum_frac
    ):
        """Constant-rate impulse arrivals drive the fluid queue to the
        closed-form M/M/k operating point: utilization -> rho over the
        feed window, throughput -> lambda, and the completion-weighted
        latency estimate -> the Erlang-C mean latency."""
        service_ns = 1000.0
        mu = 1.0 / service_ns
        lam = rho * servers * mu
        quantum = quantum_frac * service_ns
        feed_ns = 300.0 * service_ns

        env = Environment()
        queue = FluidQueue("q", service_time_ns=service_ns, servers=servers)
        stepper = FluidStepper(env, quantum_ns=quantum, until_ns=feed_ns)
        stepper.register(queue)
        stepper.start()

        def feeder():
            while env.now < feed_ns:
                queue.arrive(lam * quantum)
                yield env.timeout(quantum)

        env.process(feeder())
        env.run()
        # The stepper's last step may overshoot feed_ns by under one
        # quantum; measure at the actual end of integration (<0.2%
        # window skew over 300 service times).
        end_ns = max(feed_ns, env.now)
        queue.step(end_ns)

        closed = mmk_steady_state(lam, mu, servers)
        # Utilization over the feed window (start-up transient allowed).
        assert queue.utilization(end_ns) == pytest.approx(rho, rel=0.05)
        # Throughput: everything fed minus the steady-state residual.
        assert queue.completed_mass / end_ns == pytest.approx(lam, rel=0.02)
        # Latency estimate equals the closed form at the operating point.
        assert queue.mean_latency_ns() == pytest.approx(
            closed.mean_latency_ns, rel=0.10
        )

    @settings(max_examples=25, deadline=None)
    @given(
        ops=st.lists(
            st.tuples(
                st.sampled_from(["arrive", "step", "remove"]),
                st.floats(min_value=0.01, max_value=50.0),
            ),
            min_size=1,
            max_size=40,
        ),
        servers=st.integers(min_value=1, max_value=6),
    )
    def test_mass_conservation(self, ops, servers):
        """arrived == completed + removed + residual under any sequence
        of arrivals, integration steps, and materialization removals."""
        queue = FluidQueue("q", service_time_ns=100.0, servers=servers)
        now = 0.0
        for op, value in ops:
            if op == "arrive":
                queue.arrive(value)
            elif op == "step":
                now += value * 10.0
                queue.step(now)
            else:
                queue.remove_mass(value)
        total = queue.completed_mass + queue.removed_mass + queue.mass
        assert total == pytest.approx(queue.arrived_mass, rel=1e-9, abs=1e-9)

    def test_step_is_unconditionally_stable(self):
        """A giant quantum never overshoots below zero mass."""
        queue = FluidQueue("q", service_time_ns=10.0, servers=2)
        queue.arrive(500.0)
        queue.step(1e9)
        assert queue.mass >= 0.0
        assert queue.completed_mass == pytest.approx(500.0, rel=1e-6)


# ---------------------------------------------------------------------------
# RNG support for the batched path
# ---------------------------------------------------------------------------
class TestPoissonStream:
    def test_poisson_small_mean_moments(self):
        stream = Stream(1234, "t")
        draws = [stream.poisson(5.0) for _ in range(4000)]
        mean = sum(draws) / len(draws)
        var = sum((d - mean) ** 2 for d in draws) / len(draws)
        assert mean == pytest.approx(5.0, rel=0.05)
        assert var == pytest.approx(5.0, rel=0.15)

    def test_poisson_large_mean_normal_branch(self):
        stream = Stream(99, "t")
        draws = [stream.poisson(400.0) for _ in range(2000)]
        mean = sum(draws) / len(draws)
        assert mean == pytest.approx(400.0, rel=0.01)

    def test_poisson_zero_and_negative(self):
        stream = Stream(0, "t")
        assert stream.poisson(0.0) == 0
        with pytest.raises(ValueError):
            stream.poisson(-1.0)

    def test_binomial_moments_and_bounds(self):
        stream = Stream(7, "t")
        draws = [stream.binomial(20, 0.3) for _ in range(3000)]
        assert all(0 <= d <= 20 for d in draws)
        assert sum(draws) / len(draws) == pytest.approx(6.0, rel=0.05)


# ---------------------------------------------------------------------------
# Differential: fluid vs exact on CRN-seeded cluster configs
# ---------------------------------------------------------------------------
def _run(seed, fluid, requests=110, machines=4, rate_rps=30000.0):
    config = ClusterConfig(
        policy="round-robin",
        machines=machines,
        requests_per_service=requests,
        rate_rps=rate_rps,
        seed=seed,
        arrival_mode="poisson",
        warmup_fraction=0.0,
        fluid=fluid,
    )
    return run_cluster(services("UniqId", "StoreP"), config)


HALF_FLUID = FluidConfig(
    policy="static", fluid_machines=(2, 3), calibrate_requests=20
)


class TestDifferentialAccuracy:
    """Fluid-tier metrics within FLUID_TOLERANCES of exact DES, under
    common random numbers, on the CI seed matrix."""

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_fluid_matches_exact_within_tolerance(self, seed):
        exact = _run(seed, None)
        fluid = _run(seed, HALF_FLUID)

        # A real share of the work must actually have run fluid for the
        # comparison to mean anything.
        assert fluid.fluid_stats["absorbed"] > 0.2 * exact.completed

        # Throughput: in a completion-bounded open-loop run, a slower
        # tier shows up as unfinished work, so completed work over the
        # same offered arrivals is the throughput comparison.
        work_err = abs(fluid.merged_completed() - exact.completed) / exact.completed
        assert work_err <= FLUID_TOLERANCES["throughput"]

        # Mean latency: exact samples + fluid estimates, work-weighted.
        mean_err = abs(fluid.merged_mean_ns() - exact.mean_ns()) / exact.mean_ns()
        assert mean_err <= FLUID_TOLERANCES["mean_latency"]

        # Utilization: jobs-in-system integral (Little's law numerator;
        # window-independent, unlike the time-normalized mean).
        util_err = (
            abs(fluid.jobs_integral_ns() - exact.jobs_integral_ns())
            / exact.jobs_integral_ns()
        )
        assert util_err <= FLUID_TOLERANCES["utilization"]

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_fluid_run_is_deterministic(self, seed):
        a = _run(seed, HALF_FLUID)
        b = _run(seed, HALF_FLUID)
        assert a.recorder.samples == b.recorder.samples
        assert a.elapsed_ns == b.elapsed_ns
        assert a.fluid_stats == b.fluid_stats

    def test_auto_policy_conserves_work(self):
        fluid = FluidConfig(policy="auto", calibrate_requests=15)
        result = _run(0, fluid)
        assert result.merged_completed() + result.fluid_stats[
            "residual_mass"
        ] == pytest.approx(result.arrivals, abs=0.5)


class TestFluidFractionZero:
    def test_zero_fluid_machines_is_byte_identical_to_pure_des(self):
        """FluidConfig with no fluid machines must not perturb the
        simulation at all: same samples, same timing, same counters."""
        exact = _run(3, None)
        zero = _run(3, FluidConfig(policy="static", fluid_machines=()))

        assert zero.recorder.samples == exact.recorder.samples
        assert zero.elapsed_ns == exact.elapsed_ns
        for name in exact.services:
            assert (
                zero.services[name].recorder.samples
                == exact.services[name].recorder.samples
            )
        exact_stats = dict(exact.cluster.stats())
        zero_stats = dict(zero.cluster.stats())
        exact_stats.pop("fluid")
        zero_stats.pop("fluid")
        assert zero_stats == exact_stats
        # And the tier itself reports it never touched anything.
        assert zero.fluid_stats["absorbed"] == 0.0
        assert zero.fluid_stats["materialized"] == 0


@pytest.mark.slow
class TestFleetScaleSpeedup:
    def test_mostly_fluid_fleet_is_at_least_5x_faster(self):
        """The acceptance bar: >=80% of machines fluid at fleet scale
        must cut wall-clock time by at least 5x vs pure DES (the
        measured margin is far larger; 5x keeps CI noise-proof)."""
        import time

        svcs = services("UniqId", "StoreP", "Login")

        def run(fluid, n=600):
            config = ClusterConfig(
                policy="round-robin",
                machines=10,
                requests_per_service=n,
                rate_rps=60000.0,
                seed=0,
                arrival_mode="poisson",
                warmup_fraction=0.0,
                fluid=fluid,
            )
            start = time.perf_counter()
            result = run_cluster(svcs, config)
            return result, time.perf_counter() - start

        exact, exact_wall = run(None)
        fluid_config = FluidConfig(
            policy="static",
            fluid_machines=tuple(range(1, 10)),
            calibrate_requests=30,
            batched=True,
        )
        fluid, fluid_wall = run(fluid_config)

        assert fluid.fluid_stats["fluid_fraction"] >= 0.8
        assert fluid.fluid_stats["mean_fluid_fraction"] >= 0.6
        assert fluid.merged_completed() == pytest.approx(
            fluid.arrivals, abs=1.0
        )
        speedup = exact_wall / fluid_wall
        assert speedup >= 5.0, (
            f"fleet-scale fluid speedup {speedup:.1f}x below the 5x bar "
            f"(exact {exact_wall:.2f}s, fluid {fluid_wall:.2f}s)"
        )
        # The deterministic work proxy tells the same story.
        assert (
            exact.cluster.env.scheduled_events
            >= 5 * fluid.cluster.env.scheduled_events
        )

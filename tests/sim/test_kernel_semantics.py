"""Kernel-semantics parity suite: the permanent spec of the fast path.

The simulation kernel's dispatch substrate was rewritten for speed
(deque-backed waiter queues, an inlined event loop in ``run()``, inline
scheduling on the store hot paths). During review these tests were run
against both the old list-backed dispatch and the new fast path; they
are kept as the behavioural contract any future kernel optimization
must preserve. They pin the subtle orderings golden fixtures depend on:
interrupt-vs-completion races, condition defusing, and store
cancel/reinsert ordering — plus regressions for the latent bugs fixed
alongside the rewrite.
"""

import pytest

from repro.sim import (
    AnyOf,
    Environment,
    FilterStore,
    Interrupt,
    PriorityStore,
    SimulationError,
    Store,
)

hypothesis = pytest.importorskip("hypothesis")

from hypothesis import given, settings  # noqa: E402
from hypothesis import strategies as st  # noqa: E402


# ---------------------------------------------------------------------------
# Regressions for the latent kernel bugs fixed with the perf rework
# ---------------------------------------------------------------------------

class TestRunUntilFailedEvent:
    def test_processed_failed_until_event_raises(self):
        """run(until=e) on an already-*processed* failed event must raise
        the exception — not hand the exception object back as a value."""
        env = Environment()
        event = env.event()
        event.fail(RuntimeError("boom"))
        event._defused = True  # a handler saw it the first time around
        env.run()  # processes the event
        assert event.processed
        with pytest.raises(RuntimeError, match="boom"):
            env.run(until=event)

    def test_handled_failure_still_raises_from_run_until(self):
        """Even when a process already caught the failure, a later
        run(until=event) reports it as an exception, not a value."""
        env = Environment()
        event = env.event()
        caught = []

        def handler(env):
            try:
                yield event
            except ValueError as exc:
                caught.append(str(exc))

        env.process(handler(env))
        event.fail(ValueError("x"))
        env.run()
        assert caught == ["x"]
        with pytest.raises(ValueError):
            env.run(until=event)

    def test_processed_ok_until_event_returns_value(self):
        env = Environment()
        event = env.event()
        event.succeed("result")
        env.run()
        assert env.run(until=event) == "result"


class TestLateConditionChildFailure:
    def test_anyof_loser_failing_later_is_defused(self):
        """An AnyOf whose losing branch fails *after* the condition has
        triggered must not leak an unhandled failure out of run()."""
        env = Environment()

        def winner(env):
            yield env.timeout(1.0)
            return "fast"

        def loser(env):
            yield env.timeout(5.0)
            raise RuntimeError("late loser failure")

        results = []

        def waiter(env):
            fast = env.process(winner(env), name="winner")
            slow = env.process(loser(env), name="loser")
            got = yield AnyOf(env, [fast, slow])
            results.append(got[fast])

        env.process(waiter(env), name="waiter")
        env.run()  # must not raise: the loser's failure is defused
        assert results == ["fast"]

    def test_or_operator_loser_failure(self):
        env = Environment()

        def fails_late(env):
            yield env.timeout(10.0)
            raise ValueError("ignored")

        def quick(env):
            yield env.timeout(1.0)
            return 42

        def waiter(env):
            a = env.process(quick(env))
            b = env.process(fails_late(env))
            yield a | b

        env.process(waiter(env))
        env.run()

    def test_failure_before_trigger_still_propagates(self):
        """Defusing only applies to post-trigger stragglers: a child that
        fails while the condition is still pending fails the condition."""
        env = Environment()

        def fails_first(env):
            yield env.timeout(1.0)
            raise RuntimeError("early")

        def slow(env):
            yield env.timeout(5.0)

        seen = []

        def waiter(env):
            a = env.process(fails_first(env))
            b = env.process(slow(env))
            try:
                yield AnyOf(env, [a, b])
            except RuntimeError as exc:
                seen.append(str(exc))

        env.process(waiter(env))
        env.run()
        assert seen == ["early"]


class TestPriorityStoreRemove:
    def test_remove_preserves_heap_invariant(self):
        """Removing a middle element must not corrupt the heap: every
        later pop still returns the current minimum."""
        env = Environment()
        store = PriorityStore(env)
        # This shape makes the old naive pop(index) produce a broken
        # heap (later pops return non-minimal items).
        values = [16, 8, 1, 0, 2, 11, 13]
        for v in values:
            assert store.try_put(v)
        assert store.remove(0)
        popped = []
        while True:
            item = store.try_get()
            if item is None:
                break
            popped.append(item)
        assert popped == sorted(popped), f"heap order violated: {popped}"
        assert popped == [1, 2, 8, 11, 13, 16]

    def test_remove_never_corrupts_heap_property(self):
        @settings(max_examples=150, deadline=None)
        @given(
            st.lists(st.integers(0, 30), min_size=1, max_size=12, unique=True),
            st.data(),
        )
        def check(values, data):
            env = Environment()
            store = PriorityStore(env)
            for v in values:
                store.try_put(v)
            target = data.draw(st.sampled_from(values))
            assert store.remove(target)
            popped = []
            while True:
                item = store.try_get()
                if item is None:
                    break
                popped.append(item)
            assert popped == sorted(v for v in values if v != target)

        check()

    def test_remove_missing_item_returns_false(self):
        env = Environment()
        store = PriorityStore(env)
        store.try_put(1)
        assert not store.remove(99)
        assert store.try_get() == 1

    def test_remove_unblocks_putter(self):
        env = Environment()
        store = PriorityStore(env, capacity=2)
        store.try_put(10)
        store.try_put(20)
        admitted = []

        def producer(env):
            yield store.put(15)
            admitted.append(env.now)

        env.process(producer(env))
        env.run()
        assert admitted == []  # still full
        assert store.remove(20)
        env.run()
        assert admitted == [0.0]
        assert store.try_get() == 10
        assert store.try_get() == 15

    def test_remove_last_element(self):
        env = Environment()
        store = PriorityStore(env)
        store.try_put(3)
        store.try_put(1)
        tail = sorted([3, 1])[-1]
        assert store.remove(tail)
        assert store.try_get() == 1
        assert store.try_get() is None


# ---------------------------------------------------------------------------
# Parity: interrupt-vs-completion races
# ---------------------------------------------------------------------------

class TestInterruptCompletionRaces:
    def test_interrupt_same_instant_as_completion_is_noop(self):
        """Interrupting a process at the exact instant it completes must
        neither blow up nor deliver a stale Interrupt."""
        env = Environment()
        log = []

        def worker(env):
            yield env.timeout(5.0)
            log.append("done")
            return "ok"

        victim = env.process(worker(env), name="victim")

        def killer(env):
            yield env.timeout(5.0)
            victim.interrupt("too late")

        env.process(killer(env), name="killer")
        env.run()
        assert log == ["done"]
        assert victim.value == "ok"

    def test_interrupt_before_completion_wins(self):
        env = Environment()
        log = []

        def worker(env):
            try:
                yield env.timeout(10.0)
                log.append("done")
            except Interrupt as intr:
                log.append(("interrupted", intr.cause, env.now))

        victim = env.process(worker(env), name="victim")

        def killer(env):
            yield env.timeout(3.0)
            victim.interrupt("reroute")

        env.process(killer(env), name="killer")
        env.run()
        assert log == [("interrupted", "reroute", 3.0)]

    def test_double_interrupt_collapses(self):
        """Two watchdogs interrupting the same process in the same instant
        deliver exactly one Interrupt."""
        env = Environment()
        hits = []

        def worker(env):
            while True:
                try:
                    yield env.timeout(100.0)
                except Interrupt:
                    hits.append(env.now)
                    return

        victim = env.process(worker(env), name="victim")

        def watchdog(env):
            yield env.timeout(4.0)
            victim.interrupt("a")
            victim.interrupt("b")

        env.process(watchdog(env), name="dog")
        env.run()
        assert hits == [4.0]

    def test_interrupted_getter_does_not_swallow_item(self):
        """A get() abandoned by an interrupt must leave the item for the
        next live waiter (cancel/reinsert ordering)."""
        env = Environment()
        store = Store(env)
        got = []

        def blocked_getter(env):
            try:
                yield store.get()
                got.append("stale-getter")
            except Interrupt:
                pass

        def live_getter(env):
            item = yield store.get()
            got.append(item)

        stale = env.process(blocked_getter(env), name="stale")
        env.process(live_getter(env), name="live")

        def driver(env):
            yield env.timeout(1.0)
            stale.interrupt()
            yield store.put("payload")

        env.process(driver(env), name="driver")
        env.run()
        assert got == ["payload"]

    def test_interrupted_putter_withdraws_item(self):
        env = Environment()
        store = Store(env, capacity=1)
        store.try_put("occupies")
        outcomes = []

        def blocked_putter(env):
            try:
                yield store.put("abandoned")
                outcomes.append("landed")
            except Interrupt:
                outcomes.append("withdrawn")

        putter = env.process(blocked_putter(env), name="putter")

        def driver(env):
            yield env.timeout(1.0)
            putter.interrupt()
            yield env.timeout(1.0)
            item = store.try_get()
            outcomes.append(("drained", item))
            outcomes.append(("leftover", store.try_get()))

        env.process(driver(env), name="driver")
        env.run()
        assert outcomes == ["withdrawn", ("drained", "occupies"), ("leftover", None)]


# ---------------------------------------------------------------------------
# Parity: store cancel/reinsert ordering
# ---------------------------------------------------------------------------

class TestStoreCancelReinsert:
    def test_cancelled_triggered_get_reinserts_item_for_next_waiter(self):
        env = Environment()
        store = Store(env)
        store.try_put("token")
        get_event = store.get()  # served immediately (triggered)
        assert get_event.triggered
        get_event.cancel()  # never consumed: token must return
        assert store.try_get() == "token"

    def test_cancelled_pending_get_leaves_queue(self):
        env = Environment()
        store = Store(env)
        get_event = store.get()
        assert not get_event.triggered
        get_event.cancel()
        # A later put should not be consumed by the cancelled getter.
        store.try_put("x")
        assert store.try_get() == "x"
        assert not get_event.triggered

    def test_reinsert_wakes_blocked_getter(self):
        env = Environment()
        store = Store(env)
        store.try_put("one")
        first = store.get()
        assert first.triggered
        got = []

        def waiter(env):
            item = yield store.get()
            got.append(item)

        env.process(waiter(env))

        def canceller(env):
            yield env.timeout(1.0)
            first.cancel()

        env.process(canceller(env))
        env.run()
        assert got == ["one"]

    def test_fifo_order_across_cancellation(self):
        """Cancelling the middle waiter keeps the rest strictly FIFO."""
        env = Environment()
        store = Store(env)
        events = [store.get() for _ in range(3)]
        events[1].cancel()
        store.try_put("a")
        store.try_put("b")
        env.run()
        assert events[0].value == "a"
        assert not events[1].triggered
        assert events[2].value == "b"


# ---------------------------------------------------------------------------
# Parity: FilterStore predicate scan order
# ---------------------------------------------------------------------------

class TestFilterStoreOrdering:
    def test_blocked_head_does_not_starve_matching_waiter(self):
        env = Environment()
        store = FilterStore(env)
        got = []

        def pick(env, label, predicate):
            item = yield store.get(predicate)
            got.append((label, item))

        env.process(pick(env, "wants-big", lambda x: x >= 10), name="big")
        env.process(pick(env, "wants-small", lambda x: x < 10), name="small")

        def producer(env):
            yield store.put(3)  # matches the *second* waiter only
            yield env.timeout(1.0)
            yield store.put(50)

        env.process(producer(env), name="prod")
        env.run()
        assert got == [("wants-small", 3), ("wants-big", 50)]

    def test_unfiltered_get_is_fifo(self):
        env = Environment()
        store = FilterStore(env)
        for v in (1, 2, 3):
            store.try_put(v)
        assert [store.try_get() for _ in range(3)] == [1, 2, 3]


# ---------------------------------------------------------------------------
# Property: deque-backed stores match the list-backed reference semantics
# ---------------------------------------------------------------------------

class _ReferenceStore:
    """The pre-rewrite list-backed store semantics, kept as the oracle:
    items are FIFO; puts admit in arrival order while there is room;
    gets serve in arrival order while items remain."""

    def __init__(self, capacity):
        self.capacity = capacity
        self.items = []
        self.put_queue = []  # pending put payloads, FIFO
        self.get_queue = []  # pending get ids, FIFO
        self.served = []  # (get_id, item) in service order

    def dispatch(self):
        while True:
            progress = False
            while self.put_queue and len(self.items) < self.capacity:
                self.items.append(self.put_queue.pop(0))
                progress = True
            while self.get_queue and self.items:
                self.served.append((self.get_queue.pop(0), self.items.pop(0)))
                progress = True
            if not progress:
                return

    def put(self, item):
        self.put_queue.append(item)
        self.dispatch()

    def get(self, get_id):
        self.get_queue.append(get_id)
        self.dispatch()


@st.composite
def store_scripts(draw):
    n_ops = draw(st.integers(min_value=1, max_value=40))
    ops = []
    for i in range(n_ops):
        if draw(st.booleans()):
            ops.append(("put", i))
        else:
            ops.append(("get", i))
    capacity = draw(st.integers(min_value=1, max_value=5))
    return capacity, ops


@settings(max_examples=200, deadline=None)
@given(store_scripts())
def test_deque_store_matches_list_reference(script):
    """Any interleaving of puts/gets on the deque-backed Store serves the
    same (getter, item) pairs in the same order as the list-backed
    reference model."""
    capacity, ops = script

    reference = _ReferenceStore(capacity)
    for kind, op_id in ops:
        if kind == "put":
            reference.put(op_id)
        else:
            reference.get(op_id)

    env = Environment()
    store = Store(env, capacity=capacity)
    served = []
    gets = {}
    for kind, op_id in ops:
        if kind == "put":
            store.put(op_id)
        else:
            gets[op_id] = store.get()
    env.run()
    for op_id, event in gets.items():
        if event.triggered:
            served.append((op_id, event.value))
    # Service order in the kernel follows trigger order, which is the
    # scheduling order produced by dispatch — compare as ordered pairs
    # sorted by get id (ids are issued in program order on both sides).
    assert sorted(served) == sorted(reference.served)
    # The buffer contents (pending items) must agree too.
    assert list(store.items) == reference.items

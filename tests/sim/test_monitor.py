"""Unit tests for measurement primitives."""

import pytest

from repro.sim import (
    Counter,
    LatencyRecorder,
    SlidingWindow,
    TimeWeightedValue,
    percentile,
    summarize,
)


class TestPercentile:
    def test_empty_raises(self):
        with pytest.raises(ValueError):
            percentile([], 50.0)

    def test_out_of_range_raises(self):
        with pytest.raises(ValueError):
            percentile([1.0], 101.0)

    def test_single_element(self):
        assert percentile([42.0], 99.0) == 42.0

    def test_min_max(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert percentile(values, 0.0) == 1.0
        assert percentile(values, 100.0) == 4.0

    def test_median_interpolates(self):
        assert percentile([1.0, 2.0, 3.0, 4.0], 50.0) == 2.5

    def test_p99_of_uniform(self):
        values = [float(i) for i in range(101)]
        assert percentile(values, 99.0) == 99.0


class TestCounter:
    def test_defaults_to_zero(self):
        counter = Counter()
        assert counter.get("missing") == 0
        assert counter["missing"] == 0

    def test_add_and_get(self):
        counter = Counter()
        counter.add("x")
        counter.add("x", 4)
        assert counter.get("x") == 5

    def test_as_dict_is_copy(self):
        counter = Counter()
        counter.add("x")
        d = counter.as_dict()
        d["x"] = 100
        assert counter.get("x") == 1


class TestTimeWeightedValue:
    def test_constant_value(self):
        tw = TimeWeightedValue(initial=2.0)
        assert tw.average(10.0) == 2.0

    def test_step_change(self):
        tw = TimeWeightedValue(initial=0.0)
        tw.set(4.0, now=5.0)  # 0 for [0,5), 4 for [5,10)
        assert tw.average(10.0) == 2.0

    def test_add_delta(self):
        tw = TimeWeightedValue(initial=1.0)
        tw.add(1.0, now=5.0)
        assert tw.value == 2.0
        assert tw.average(10.0) == 1.5

    def test_zero_elapsed_returns_current(self):
        tw = TimeWeightedValue(initial=3.0)
        assert tw.average(0.0) == 3.0

    def test_reset_restarts_window(self):
        tw = TimeWeightedValue(initial=0.0)
        tw.set(10.0, now=5.0)
        tw.reset(now=5.0)
        assert tw.average(10.0) == 10.0


class TestLatencyRecorder:
    def test_empty_mean_raises(self):
        rec = LatencyRecorder()
        with pytest.raises(ValueError):
            rec.mean()

    def test_mean_and_percentiles(self):
        rec = LatencyRecorder()
        for v in [1.0, 2.0, 3.0, 4.0, 5.0]:
            rec.record(v)
        assert rec.mean() == 3.0
        assert rec.p50() == 3.0
        assert rec.max() == 5.0
        assert len(rec) == 5

    def test_warmup_skips_prefix(self):
        rec = LatencyRecorder(warmup_fraction=0.5)
        for v in [100.0, 100.0, 1.0, 1.0]:
            rec.record(v)
        assert rec.mean() == 1.0
        assert rec.count == 2

    def test_bad_warmup_rejected(self):
        with pytest.raises(ValueError):
            LatencyRecorder(warmup_fraction=1.0)

    def test_summary_keys(self):
        rec = LatencyRecorder()
        for v in range(100):
            rec.record(float(v))
        summary = rec.summary()
        assert set(summary) == {"count", "mean", "p50", "p95", "p99", "max"}
        assert summary["count"] == 100
        assert summary["max"] == 99.0


class TestLatencyRecorderSortedCache:
    def test_cache_invalidated_on_record(self):
        rec = LatencyRecorder()
        rec.record(5.0)
        assert rec.pct(100.0) == 5.0
        rec.record(9.0)  # must not serve the stale one-element view
        assert rec.pct(100.0) == 9.0
        assert rec.pct(0.0) == 5.0

    def test_repeated_pct_reuses_sorted_view(self):
        rec = LatencyRecorder()
        for v in [3.0, 1.0, 2.0]:
            rec.record(v)
        first = rec._effective_sorted()
        assert rec._effective_sorted() is first
        rec.record(0.5)
        assert rec._effective_sorted() is not first

    def test_warmup_slicing_applies_to_cached_view(self):
        rec = LatencyRecorder(warmup_fraction=0.25)
        for v in [100.0, 4.0, 2.0, 3.0]:
            rec.record(v)
        # One warmup sample skipped, remainder sorted once.
        assert rec.pct(0.0) == 2.0
        assert rec.pct(100.0) == 4.0
        assert rec.summary()["count"] == 3

    def test_single_element_percentile_bounds(self):
        rec = LatencyRecorder()
        rec.record(7.0)
        assert rec.pct(0.0) == rec.pct(50.0) == rec.pct(100.0) == 7.0


class TestSlidingWindow:
    def test_push_and_mean(self):
        window = SlidingWindow(capacity=3)
        for v in [1.0, 2.0, 3.0]:
            window.push(v)
        assert window.mean() == 2.0
        assert len(window) == 3

    def test_capacity_evicts_oldest(self):
        window = SlidingWindow(capacity=3)
        for v in [1.0, 2.0, 3.0, 10.0]:
            window.push(v)
        assert len(window) == 3
        assert window.mean() == 5.0  # 2, 3, 10

    def test_empty_mean_is_none(self):
        assert SlidingWindow(capacity=2).mean() is None

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            SlidingWindow(capacity=0)


class TestTimeWeightedValueReset:
    def test_reset_keeps_current_value(self):
        tw = TimeWeightedValue(initial=2.0)
        tw.set(8.0, now=4.0)
        tw.reset(now=4.0)
        assert tw.value == 8.0
        assert tw.average(8.0) == 8.0

    def test_reset_discards_history(self):
        tw = TimeWeightedValue(initial=100.0)
        tw.set(0.0, now=10.0)
        tw.reset(now=10.0)
        tw.set(4.0, now=12.0)
        # Average over [10, 14]: two units at 0, two at 4.
        assert tw.average(14.0) == 2.0


class TestSummarize:
    def test_empty(self):
        assert summarize([]) == {"count": 0}

    def test_ordering_of_percentiles(self):
        summary = summarize([float(i) for i in range(1000)])
        assert summary["p50"] <= summary["p95"] <= summary["p99"] <= summary["max"]

"""Kernel profiling hooks: event counts, peak queue, attribution."""

from repro.obs import format_profile
from repro.sim import Environment


def _worker(env, delay):
    yield env.timeout(delay)
    yield env.timeout(delay)


def test_profiling_disabled_by_default():
    env = Environment()
    assert env.profile is None
    env.process(_worker(env, 1.0))
    env.run()
    assert env.profile is None  # running never turns it on


def test_profile_counts_events_and_peak_queue():
    env = Environment(profile=True)
    for i in range(4):
        env.process(_worker(env, float(i + 1)), name=f"w-{i}")
    env.run()
    profile = env.profile
    # Per process: init + 2 timeouts + the termination event = 4.
    assert profile.events == 16
    assert profile.peak_queue >= 3
    assert profile.wall_s >= 0.0


def test_attribution_groups_by_stripped_process_name():
    env = Environment(profile=True)
    env.process(_worker(env, 1.0), name="req-17")
    env.process(_worker(env, 2.0), name="req-203")
    env.process(_worker(env, 3.0), name="other")
    env.run()
    by_process = env.profile.by_process
    assert by_process["req"]["events"] == 6
    assert by_process["other"]["events"] == 3
    assert "req-17" not in by_process


def test_group_of_falls_back_to_event_class():
    env = Environment(profile=True)
    event = env.timeout(1.0)
    seen = []
    event.callbacks.append(seen.append)  # plain function, no Process owner
    env.run()
    assert seen
    assert "Timeout" in env.profile.by_process


def test_enable_profiling_is_idempotent():
    env = Environment()
    first = env.enable_profiling()
    env.process(_worker(env, 1.0))
    env.run()
    assert env.enable_profiling() is first  # keeps collected data
    assert first.events > 0


def test_format_profile_renders_table():
    env = Environment(profile=True)
    env.process(_worker(env, 1.0), name="busy-1")
    env.run()
    text = format_profile(env)
    assert "events processed" in text
    assert "peak event queue" in text
    assert "busy" in text
    assert format_profile(Environment()) == "(kernel profiling disabled)"

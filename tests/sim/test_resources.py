"""Unit tests for Resource / PriorityResource."""

import pytest

from repro.sim import Environment, PriorityResource, Resource


def test_capacity_must_be_positive():
    env = Environment()
    with pytest.raises(ValueError):
        Resource(env, capacity=0)


def test_single_server_serializes_users():
    env = Environment()
    res = Resource(env, capacity=1)
    log = []

    def user(env, res, name, hold):
        with res.request() as req:
            yield req
            log.append((name, env.now))
            yield env.timeout(hold)

    env.process(user(env, res, "a", 2.0))
    env.process(user(env, res, "b", 2.0))
    env.run()
    assert log == [("a", 0.0), ("b", 2.0)]


def test_multi_server_parallelism():
    env = Environment()
    res = Resource(env, capacity=3)
    starts = []

    def user(env, res, name):
        with res.request() as req:
            yield req
            starts.append((name, env.now))
            yield env.timeout(5.0)

    for name in "abcd":
        env.process(user(env, res, name))
    env.run()
    start_times = dict(starts)
    assert start_times["a"] == start_times["b"] == start_times["c"] == 0.0
    assert start_times["d"] == 5.0


def test_count_and_queue_lengths():
    env = Environment()
    res = Resource(env, capacity=1)

    def holder(env, res):
        with res.request() as req:
            yield req
            yield env.timeout(10.0)

    def observer(env, res, out):
        yield env.timeout(1.0)
        res.request()  # queued behind holder
        out.append((res.count, len(res.queue)))

    out = []
    env.process(holder(env, res))
    env.process(observer(env, res, out))
    env.run(until=2.0)
    assert out == [(1, 1)]


def test_release_via_context_manager():
    env = Environment()
    res = Resource(env, capacity=1)

    def user(env, res):
        with res.request() as req:
            yield req
            yield env.timeout(1.0)
        return res.count

    p = env.process(user(env, res))
    env.run()
    assert p.value == 0


def test_explicit_release():
    env = Environment()
    res = Resource(env, capacity=1)

    def user(env, res):
        req = res.request()
        yield req
        yield env.timeout(1.0)
        res.release(req)
        return res.count

    p = env.process(user(env, res))
    env.run()
    assert p.value == 0


def test_cancel_queued_request_withdraws_it():
    env = Environment()
    res = Resource(env, capacity=1)
    got_resource = []

    def holder(env, res):
        with res.request() as req:
            yield req
            yield env.timeout(10.0)

    def impatient(env, res):
        req = res.request()
        result = yield req | env.timeout(1.0)
        if req not in result:
            req.cancel()
            return "gave-up"
        return "served"

    def patient(env, res, log):
        yield env.timeout(0.5)
        with res.request() as req:
            yield req
            log.append(env.now)

    log = []
    env.process(holder(env, res))
    p = env.process(impatient(env, res))
    env.process(patient(env, res, log))
    env.run()
    assert p.value == "gave-up"
    # The patient process got the resource when the holder released it,
    # not blocked forever behind the withdrawn request.
    assert log == [10.0]


def test_fifo_ordering():
    env = Environment()
    res = Resource(env, capacity=1)
    order = []

    def holder(env):
        with res.request() as req:
            yield req
            yield env.timeout(5.0)

    def waiter(env, name, arrive):
        yield env.timeout(arrive)
        with res.request() as req:
            yield req
            order.append(name)
            yield env.timeout(1.0)

    env.process(holder(env))
    env.process(waiter(env, "first", 1.0))
    env.process(waiter(env, "second", 2.0))
    env.process(waiter(env, "third", 3.0))
    env.run()
    assert order == ["first", "second", "third"]


def test_priority_resource_orders_by_priority():
    env = Environment()
    res = PriorityResource(env, capacity=1)
    order = []

    def holder(env):
        with res.request() as req:
            yield req
            yield env.timeout(5.0)

    def waiter(env, name, arrive, priority):
        yield env.timeout(arrive)
        with res.request(priority=priority) as req:
            yield req
            order.append(name)
            yield env.timeout(1.0)

    env.process(holder(env))
    env.process(waiter(env, "low", 1.0, priority=10))
    env.process(waiter(env, "high", 2.0, priority=0))
    env.process(waiter(env, "mid", 3.0, priority=5))
    env.run()
    assert order == ["high", "mid", "low"]


def test_priority_ties_break_fifo():
    env = Environment()
    res = PriorityResource(env, capacity=1)
    order = []

    def holder(env):
        with res.request() as req:
            yield req
            yield env.timeout(5.0)

    def waiter(env, name, arrive):
        yield env.timeout(arrive)
        with res.request(priority=1) as req:
            yield req
            order.append(name)
            yield env.timeout(1.0)

    env.process(holder(env))
    env.process(waiter(env, "a", 1.0))
    env.process(waiter(env, "b", 2.0))
    env.run()
    assert order == ["a", "b"]


def test_priority_cancel_queued():
    env = Environment()
    res = PriorityResource(env, capacity=1)
    served = []

    def holder(env):
        with res.request() as req:
            yield req
            yield env.timeout(10.0)

    def canceller(env):
        yield env.timeout(1.0)
        req = res.request(priority=0)
        yield env.timeout(1.0)
        req.cancel()

    def waiter(env):
        yield env.timeout(2.0)
        with res.request(priority=5) as req:
            yield req
            served.append(env.now)

    env.process(holder(env))
    env.process(canceller(env))
    env.process(waiter(env))
    env.run()
    assert served == [10.0]


def test_utilization_under_saturation():
    """With demand > capacity, the resource stays busy back to back."""
    env = Environment()
    res = Resource(env, capacity=2)
    completions = []

    def user(env, i):
        with res.request() as req:
            yield req
            yield env.timeout(1.0)
            completions.append(env.now)

    for i in range(10):
        env.process(user(env, i))
    env.run()
    assert env.now == 5.0
    assert len(completions) == 10

"""Unit tests for deterministic random streams."""


import pytest

from repro.sim import RandomStreams


def test_same_seed_same_sequence():
    a = RandomStreams(seed=7).stream("x")
    b = RandomStreams(seed=7).stream("x")
    assert [a.random() for _ in range(10)] == [b.random() for _ in range(10)]


def test_different_names_different_sequences():
    streams = RandomStreams(seed=7)
    a = streams.stream("a")
    b = streams.stream("b")
    assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]


def test_different_seeds_different_sequences():
    a = RandomStreams(seed=1).stream("x")
    b = RandomStreams(seed=2).stream("x")
    assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]


def test_stream_is_cached():
    streams = RandomStreams(seed=3)
    assert streams.stream("x") is streams.stream("x")
    assert "x" in streams
    assert streams.names() == ["x"]


def test_adding_stream_does_not_perturb_existing():
    s1 = RandomStreams(seed=9)
    a1 = s1.stream("a")
    first = [a1.random() for _ in range(3)]

    s2 = RandomStreams(seed=9)
    a2 = s2.stream("a")
    s2.stream("brand-new")  # extra stream created in between
    second = [a2.random() for _ in range(3)]
    assert first == second


def test_exponential_mean():
    stream = RandomStreams(seed=11).stream("exp")
    samples = [stream.exponential(100.0) for _ in range(20000)]
    mean = sum(samples) / len(samples)
    assert abs(mean - 100.0) / 100.0 < 0.05


def test_exponential_rejects_nonpositive_mean():
    stream = RandomStreams(seed=1).stream("exp")
    with pytest.raises(ValueError):
        stream.exponential(0.0)


def test_lognormal_median():
    stream = RandomStreams(seed=13).stream("ln")
    samples = sorted(stream.lognormal_median(50.0, 0.8) for _ in range(20001))
    median = samples[len(samples) // 2]
    assert abs(median - 50.0) / 50.0 < 0.1


def test_bounded_lognormal_respects_bounds():
    stream = RandomStreams(seed=17).stream("bln")
    for _ in range(1000):
        value = stream.bounded_lognormal(100.0, 2.0, low=10.0, high=500.0)
        assert 10.0 <= value <= 500.0


def test_bernoulli_probability():
    stream = RandomStreams(seed=19).stream("bern")
    hits = sum(stream.bernoulli(0.3) for _ in range(20000))
    assert abs(hits / 20000 - 0.3) < 0.02


def test_bernoulli_rejects_bad_probability():
    stream = RandomStreams(seed=1).stream("bern")
    with pytest.raises(ValueError):
        stream.bernoulli(1.5)


def test_pareto_positive_and_heavy_tailed():
    stream = RandomStreams(seed=23).stream("par")
    samples = [stream.pareto(shape=1.5, scale=10.0) for _ in range(5000)]
    assert min(samples) >= 10.0
    assert max(samples) > 100.0  # heavy tail reaches far out


def test_pareto_rejects_bad_params():
    stream = RandomStreams(seed=1).stream("par")
    with pytest.raises(ValueError):
        stream.pareto(0.0, 1.0)


def test_uniform_and_randint_ranges():
    stream = RandomStreams(seed=29).stream("u")
    for _ in range(100):
        assert 5.0 <= stream.uniform(5.0, 6.0) <= 6.0
        assert 1 <= stream.randint(1, 3) <= 3


def test_choice_and_shuffle():
    stream = RandomStreams(seed=31).stream("c")
    options = ["a", "b", "c"]
    assert stream.choice(options) in options
    items = list(range(10))
    shuffled = list(items)
    stream.shuffle(shuffled)
    assert sorted(shuffled) == items

"""Unit tests for Store / PriorityStore / FilterStore."""

import pytest

from repro.sim import Environment, FilterStore, PriorityItem, PriorityStore, Store


def test_capacity_must_be_positive():
    env = Environment()
    with pytest.raises(ValueError):
        Store(env, capacity=0)


def test_put_then_get_fifo():
    env = Environment()
    store = Store(env)
    got = []

    def producer(env):
        for item in ("a", "b", "c"):
            yield store.put(item)

    def consumer(env):
        for _ in range(3):
            item = yield store.get()
            got.append(item)

    env.process(producer(env))
    env.process(consumer(env))
    env.run()
    assert got == ["a", "b", "c"]


def test_get_blocks_until_put():
    env = Environment()
    store = Store(env)
    got = []

    def consumer(env):
        item = yield store.get()
        got.append((env.now, item))

    def producer(env):
        yield env.timeout(5.0)
        yield store.put("late")

    env.process(consumer(env))
    env.process(producer(env))
    env.run()
    assert got == [(5.0, "late")]


def test_put_blocks_when_full():
    env = Environment()
    store = Store(env, capacity=1)
    times = []

    def producer(env):
        yield store.put(1)
        times.append(env.now)
        yield store.put(2)
        times.append(env.now)

    def consumer(env):
        yield env.timeout(3.0)
        yield store.get()

    env.process(producer(env))
    env.process(consumer(env))
    env.run()
    assert times == [0.0, 3.0]


def test_try_put_respects_capacity():
    env = Environment()
    store = Store(env, capacity=2)
    assert store.try_put("a")
    assert store.try_put("b")
    assert not store.try_put("c")
    assert len(store) == 2
    assert store.is_full


def test_try_get_nonblocking():
    env = Environment()
    store = Store(env)
    assert store.try_get() is None
    store.try_put("x")
    assert store.try_get() == "x"
    assert store.try_get() is None


def test_try_put_wakes_blocked_getter():
    env = Environment()
    store = Store(env)
    got = []

    def consumer(env):
        item = yield store.get()
        got.append(item)

    def producer(env):
        yield env.timeout(1.0)
        assert store.try_put("wake")

    env.process(consumer(env))
    env.process(producer(env))
    env.run()
    assert got == ["wake"]


def test_priority_store_orders_items():
    env = Environment()
    store = PriorityStore(env)
    got = []

    def producer(env):
        yield store.put(PriorityItem(3, "low"))
        yield store.put(PriorityItem(1, "high"))
        yield store.put(PriorityItem(2, "mid"))

    def consumer(env):
        yield env.timeout(1.0)
        for _ in range(3):
            entry = yield store.get()
            got.append(entry.item)

    env.process(producer(env))
    env.process(consumer(env))
    env.run()
    assert got == ["high", "mid", "low"]


def test_priority_item_ordering_and_equality():
    a = PriorityItem(1, "x")
    b = PriorityItem(2, "x")
    assert a < b
    assert a == PriorityItem(1, "x")
    assert "PriorityItem" in repr(a)


def test_filter_store_matches_predicate():
    env = Environment()
    store = FilterStore(env)
    got = []

    def producer(env):
        for item in (1, 2, 3, 4):
            yield store.put(item)

    def consumer(env):
        item = yield store.get(lambda x: x % 2 == 0)
        got.append(item)
        item = yield store.get(lambda x: x % 2 == 0)
        got.append(item)

    env.process(producer(env))
    env.process(consumer(env))
    env.run()
    assert got == [2, 4]
    assert list(store.items) == [1, 3]


def test_filter_store_blocks_until_match():
    env = Environment()
    store = FilterStore(env)
    got = []

    def consumer(env):
        item = yield store.get(lambda x: x == "target")
        got.append((env.now, item))

    def producer(env):
        yield store.put("noise")
        yield env.timeout(2.0)
        yield store.put("target")

    env.process(consumer(env))
    env.process(producer(env))
    env.run()
    assert got == [(2.0, "target")]


def test_filter_store_plain_get():
    env = Environment()
    store = FilterStore(env)

    def proc(env):
        yield store.put("only")
        item = yield store.get()
        return item

    p = env.process(proc(env))
    env.run()
    assert p.value == "only"


def test_store_backpressure_chain():
    """A bounded store between producer and consumer limits throughput."""
    env = Environment()
    store = Store(env, capacity=2)
    consumed = []

    def producer(env):
        for i in range(6):
            yield store.put(i)

    def consumer(env):
        while len(consumed) < 6:
            item = yield store.get()
            yield env.timeout(1.0)
            consumed.append((env.now, item))

    env.process(producer(env))
    env.process(consumer(env))
    env.run()
    assert [item for _, item in consumed] == [0, 1, 2, 3, 4, 5]
    assert env.now == 6.0

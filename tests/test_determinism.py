"""Same-seed byte-identity across the public entry points.

Every run function in the repo is seeded through the named-stream CRN
plumbing (:mod:`repro.sim.rng`), so running the same config twice must
reproduce the run exactly — not "statistically close", but equal sample
lists, counters and stats dicts. These tests pin that contract across
the server driver, the cluster driver, fault injection, telemetry
on/off and the fluid tier, so a refactor that sneaks in an unseeded
``random.random()`` or dict-order dependence fails loudly.
"""

import pytest

from repro.cluster import (
    ClusterConfig,
    FluidConfig,
    HealthConfig,
    MachineFailure,
    run_cluster,
)
from repro.faults import FaultConfig
from repro.hw import MachineParams
from repro.obs import ObsConfig
from repro.server import RunConfig, run_experiment
from repro.workloads import social_network_services

ALL_SERVICES = {s.name: s for s in social_network_services()}
SERVICES = [ALL_SERVICES["UniqId"], ALL_SERVICES["StoreP"]]


# ---------------------------------------------------------------------------
# Fingerprints: everything observable about a run, as plain data.
# ---------------------------------------------------------------------------
def _service_fingerprint(service):
    return {
        "samples": tuple(service.recorder.samples),
        "completed": service.completed,
        "censored": service.censored,
        "errors": service.errors,
        "timeouts": service.timeouts,
        "components": dict(service.component_sums),
        "fluid_mass": service.fluid_completed_mass,
    }


def _server_fingerprint(result):
    return {
        "elapsed_ns": result.elapsed_ns,
        "services": {
            name: _service_fingerprint(s) for name, s in result.services.items()
        },
        "hardware": repr(result.hardware_stats),
        "orchestrator": repr(result.orchestrator_stats),
    }


def _cluster_fingerprint(result):
    return {
        "elapsed_ns": result.elapsed_ns,
        "samples": tuple(result.recorder.samples),
        "arrivals": result.arrivals,
        "completed": result.completed,
        "shed": result.shed,
        "lost": result.lost,
        "machines_failed": result.machines_failed,
        "machine_stats": repr(result.machine_stats),
        "fluid_stats": repr(result.fluid_stats),
        "services": {
            name: _service_fingerprint(s) for name, s in result.services.items()
        },
    }


# ---------------------------------------------------------------------------
# Server driver
# ---------------------------------------------------------------------------
SERVER_CONFIGS = {
    "dedicated-poisson": dict(arrival_mode="poisson", rate_rps=20000.0),
    "colocated-bursty": dict(arrival_mode="alibaba", colocated=True),
    "faults": dict(
        arrival_mode="poisson",
        rate_rps=20000.0,
        colocated=True,
        faults=FaultConfig(pe_transient_rate=0.05, dma_stall_rate=0.02),
    ),
    "telemetry-on": dict(
        arrival_mode="poisson",
        rate_rps=20000.0,
        colocated=True,
        obs=ObsConfig(metrics=True, telemetry=True),
    ),
    "placement-split": dict(
        arrival_mode="poisson",
        rate_rps=20000.0,
        machine_params=MachineParams().with_placement("pcie", {"tcp": "nic"}),
    ),
    "placement-faults": dict(
        arrival_mode="poisson",
        rate_rps=20000.0,
        machine_params=MachineParams().with_placement("pcie"),
        faults=FaultConfig(
            pcie_flap_interval_ns=3e6, pcie_flap_down_ns=5e5, pcie_flap_max=64
        ),
    ),
    "gray-faults": dict(
        arrival_mode="poisson",
        rate_rps=20000.0,
        machine_params=MachineParams().with_placement(
            "on_package", {"tcp": "nic"}
        ),
        faults=FaultConfig(
            gray_limp_probability=0.5,
            gray_limp_factor=2.0,
            gray_slowdown_interval_ns=2e6,
            gray_slowdown_ns=1e6,
            gray_slowdown_factor=4.0,
            gray_slowdown_max=8,
            gray_ramp_interval_ns=3e6,
            gray_ramp_ns=2e6,
            gray_ramp_peak_factor=5.0,
            gray_ramp_steps=4,
            gray_ramp_max=4,
            gray_ramp_placement="nic",
        ),
    ),
}


def _run_server(seed, **overrides):
    config = RunConfig(
        architecture="accelflow",
        requests_per_service=60,
        seed=seed,
        warmup_fraction=0.0,
        **overrides,
    )
    return run_experiment(SERVICES, config)


class TestServerDeterminism:
    @pytest.mark.parametrize("name", sorted(SERVER_CONFIGS))
    @pytest.mark.parametrize("seed", [0, 7])
    def test_same_seed_reproduces_the_run(self, name, seed):
        overrides = SERVER_CONFIGS[name]
        a = _run_server(seed, **overrides)
        b = _run_server(seed, **overrides)
        assert _server_fingerprint(a) == _server_fingerprint(b)

    def test_different_seeds_differ(self):
        a = _run_server(0, **SERVER_CONFIGS["dedicated-poisson"])
        b = _run_server(1, **SERVER_CONFIGS["dedicated-poisson"])
        fa = _server_fingerprint(a)["services"]["UniqId"]["samples"]
        fb = _server_fingerprint(b)["services"]["UniqId"]["samples"]
        assert fa != fb

    def test_telemetry_is_a_pure_observer(self):
        # Turning the observability plane on must not perturb a single
        # latency sample: it reads simulation state, never draws from
        # the workload streams.
        base = SERVER_CONFIGS["dedicated-poisson"]
        plain = _run_server(3, **base)
        observed = _run_server(
            3, obs=ObsConfig(metrics=True, telemetry=True, trace=True), **base
        )
        for name in plain.services:
            assert (
                plain.services[name].recorder.samples
                == observed.services[name].recorder.samples
            )
        assert plain.elapsed_ns == observed.elapsed_ns


# ---------------------------------------------------------------------------
# Cluster driver
# ---------------------------------------------------------------------------
CLUSTER_CONFIGS = {
    "round-robin": dict(),
    "failures": dict(failures=(MachineFailure(at_ns=2e6, machine=1),)),
    "fluid-static": dict(
        fluid=FluidConfig(
            policy="static", fluid_machines=(2,), calibrate_requests=15
        ),
        machines=3,
    ),
    "fluid-batched": dict(
        fluid=FluidConfig(
            policy="static",
            fluid_machines=(1, 2),
            calibrate_requests=10,
            batched=True,
        ),
        machines=3,
    ),
    "health-plane": dict(
        machines=3,
        health=HealthConfig(
            latency_threshold_ns=5e5,
            eject_after=4,
            readmit_after_ns=2e6,
            trial_requests=4,
            probe_interval_ns=1e6,
            probe_max=64,
        ),
        faults=FaultConfig(
            gray_limp_probability=0.6, gray_limp_factor=3.0
        ),
    ),
}


def _run_cluster(seed, **overrides):
    config = ClusterConfig(
        policy="round-robin",
        machines=overrides.pop("machines", 2),
        requests_per_service=80,
        rate_rps=30000.0,
        seed=seed,
        arrival_mode="poisson",
        warmup_fraction=0.0,
        **overrides,
    )
    return run_cluster(SERVICES, config)


class TestClusterDeterminism:
    @pytest.mark.parametrize("name", sorted(CLUSTER_CONFIGS))
    @pytest.mark.parametrize("seed", [0, 7])
    def test_same_seed_reproduces_the_run(self, name, seed):
        overrides = CLUSTER_CONFIGS[name]
        a = _run_cluster(seed, **dict(overrides))
        b = _run_cluster(seed, **dict(overrides))
        assert _cluster_fingerprint(a) == _cluster_fingerprint(b)

    def test_telemetry_is_a_pure_observer(self):
        plain = _run_cluster(3)
        observed = _run_cluster(3, obs=ObsConfig(metrics=True, telemetry=True))
        assert plain.recorder.samples == observed.recorder.samples
        assert plain.elapsed_ns == observed.elapsed_ns

    def test_fluid_zero_matches_no_fluid_config(self):
        # A fluid tier with no fluid machines must be a byte-identical
        # no-op: the tier draws only from its own named streams, so its
        # mere presence cannot shift any workload draw.
        plain = _run_cluster(5, machines=3)
        gated = _run_cluster(
            5,
            machines=3,
            fluid=FluidConfig(policy="static", fluid_machines=()),
        )
        assert plain.recorder.samples == gated.recorder.samples
        assert plain.elapsed_ns == gated.elapsed_ns
        assert gated.fluid_stats["absorbed"] == 0.0

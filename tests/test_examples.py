"""Smoke tests: the fast example scripts run end to end."""

import json
import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, *args: str, timeout: float = 180.0) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    return result.stdout


def test_quickstart_example():
    out = run_example("quickstart.py")
    assert "Round trip: OK" in out
    assert "end-to-end latency" in out
    assert "dispatcher ops" in out


def test_compile_traces_example():
    out = run_example("compile_traces.py")
    assert "Compiled 3 traces" in out
    assert "catalogue is closed" in out
    assert "p99" in out


def test_trace_export_example(tmp_path):
    out_path = tmp_path / "trace.json"
    out = run_example(
        "trace_export.py", "--out", str(out_path), "--requests", "10"
    )
    assert "Wrote" in out
    assert "timeline" in out
    assert "events processed" in out
    payload = json.loads(out_path.read_text())
    assert payload["traceEvents"]
    assert {e["ph"] for e in payload["traceEvents"]} >= {"M", "X", "i"}


def test_live_dashboard_example(tmp_path):
    bundle_path = tmp_path / "incident.json"
    out = run_example(
        "live_dashboard.py",
        "--requests", "300", "--seed", "0",
        "--bundle-out", str(bundle_path),
    )
    assert "Calibrated SLO" in out
    assert "fleet telemetry" in out
    assert "slo-burn:UniqId" in out  # the alert feed shows the burn
    assert "Alerts fired:" in out
    assert "Incidents captured:" in out
    assert "machine-failure" in out  # the correlation table names the fault
    bundle = json.loads(bundle_path.read_text())
    assert bundle["schema"] == "accelflow-incident/1"
    assert all(e["ph"] in ("M", "X", "i") for e in bundle["trace"]["traceEvents"])


def test_live_service_example():
    out = run_example("live_service.py")
    assert "One request at a time:" in out
    assert "UniqId: ok" in out
    assert "shed at the front door" in out
    assert "Serving scorecard" in out
    assert "Achieved RPS" in out


@pytest.mark.parametrize("name", ["quickstart.py", "compile_traces.py",
                                  "custom_service.py", "serverless_burst.py",
                                  "compare_orchestrators.py",
                                  "design_space.py", "trace_export.py",
                                  "live_dashboard.py", "live_service.py"])
def test_examples_exist_and_have_docstrings(name):
    path = EXAMPLES / name
    assert path.exists()
    text = path.read_text()
    assert text.lstrip().startswith(('#!/usr/bin/env python3', '"""'))
    assert '"""' in text

"""Failure injection: the system degrades gracefully, never hangs.

Each test cranks one failure mode to an extreme — network loss, page
faults, payload exceptions, starved hardware, tenant throttling — and
checks that every request still terminates with a sane status and the
bookkeeping stays consistent.
"""


from repro.hw import MachineParams
from repro.hw.params import AcceleratorParams, TlbParams
from repro.server import SimulatedServer
from repro.workloads import (
    BranchProbabilities,
    Buckets,
    RemoteLatencies,
    social_network_services,
)

SERVICES = {s.name: s for s in social_network_services()}


def run_all(server, spec, count):
    requests = [server.make_request(spec) for _ in range(count)]
    procs = [server.submit(r) for r in requests]
    server.env.run(until=server.env.all_of(procs))
    assert all(r.completed for r in requests), "a request never terminated"
    return requests


class TestNetworkLoss:
    def test_total_loss_times_out_every_remote_request(self):
        server = SimulatedServer(
            "accelflow", remotes=RemoteLatencies(loss_probability=1.0)
        )
        requests = run_all(server, SERVICES["StoreP"], 5)
        assert all(r.timed_out and r.error for r in requests)
        assert server.orchestrator.tcp_timeouts == 5

    def test_timeout_duration_respected(self):
        from repro.workloads import OrchestrationCosts

        server = SimulatedServer(
            "accelflow",
            remotes=RemoteLatencies(loss_probability=1.0),
            orch_costs=OrchestrationCosts(tcp_response_timeout_ns=1e6),
        )
        (request,) = run_all(server, SERVICES["StoreP"], 1)
        assert request.latency_ns >= 1e6

    def test_services_without_remotes_unaffected(self):
        server = SimulatedServer(
            "accelflow", remotes=RemoteLatencies(loss_probability=1.0)
        )
        requests = run_all(server, SERVICES["UniqId"], 5)
        assert not any(r.timed_out for r in requests)


class TestPageFaultStorm:
    def test_every_op_faulting_still_completes(self):
        params = MachineParams(
            tlb=TlbParams(page_fault_probability=1.0, miss_probability=0.0)
        )
        server = SimulatedServer("accelflow", machine_params=params)
        requests = run_all(server, SERVICES["UniqId"], 3)
        faults = server.hardware.tlb_stats()["page_faults"]
        assert faults >= 3 * 9  # every op faults
        # Each fault pays the OS service latency.
        baseline = SimulatedServer("accelflow")
        base_requests = run_all(baseline, SERVICES["UniqId"], 3)
        assert (
            sum(r.latency_ns for r in requests)
            > sum(r.latency_ns for r in base_requests)
        )


class TestPayloadExceptions:
    def test_all_exceptions_reported_not_hung(self):
        import dataclasses

        # Strip the forced exception=False pin so sampling applies.
        spec = SERVICES["StoreP"]
        from repro.workloads import TraceInvocation

        path = tuple(
            dataclasses.replace(step, forced={"compressed": True})
            if isinstance(step, TraceInvocation) and step.entry == "T8c"
            else step
            for step in spec.path
        )
        spec = dataclasses.replace(spec, path=path)
        server = SimulatedServer(
            "accelflow", branch_probs=BranchProbabilities(exception=1.0)
        )
        requests = run_all(server, spec, 5)
        assert all(r.error for r in requests)


class TestStarvedHardware:
    def test_one_pe_one_slot_everything_falls_back(self):
        params = MachineParams(
            accelerator=AcceleratorParams(
                pes=1, input_queue_entries=1, overflow_entries=1
            )
        )
        server = SimulatedServer("accelflow", machine_params=params)
        requests = run_all(server, SERVICES["Follow"], 6)
        # Heavy fallback, yet conservation holds: every request is done
        # and CPU time absorbed the spilled work.
        assert server.orchestrator.fallbacks > 0
        for request in requests:
            if request.fell_back:
                assert request.components[Buckets.CPU] > request.spec.app_logic_ns

    def test_zero_capacity_never_deadlocks_under_burst(self):
        params = MachineParams(
            accelerator=AcceleratorParams(
                pes=1, input_queue_entries=1, overflow_entries=1
            )
        )
        server = SimulatedServer("relief", machine_params=params)
        run_all(server, SERVICES["CPost"], 4)  # parallel fan-out + tiny queues


class TestTenantThrottling:
    def test_limit_one_serializes_but_completes(self):
        params = MachineParams(tenant_trace_limit=1)
        server = SimulatedServer("accelflow", machine_params=params)
        requests = run_all(server, SERVICES["CPost"], 3)
        assert server.orchestrator.tenants.throttled > 0
        assert server.orchestrator.tenants.active_tenants == 0

    def test_queue_bucket_accounts_throttle_waits(self):
        params = MachineParams(tenant_trace_limit=1)
        server = SimulatedServer("accelflow", machine_params=params)
        requests = run_all(server, SERVICES["CPost"], 3)
        assert any(r.components[Buckets.QUEUE] > 0 for r in requests)


class TestCombinedChaos:
    def test_everything_at_once(self):
        """Loss + faults + starved queues + tenant limits simultaneously."""
        params = MachineParams(
            accelerator=AcceleratorParams(
                pes=1, input_queue_entries=2, overflow_entries=2
            ),
            tlb=TlbParams(page_fault_probability=0.2, miss_probability=0.5),
            tenant_trace_limit=2,
        )
        server = SimulatedServer(
            "accelflow",
            machine_params=params,
            remotes=RemoteLatencies(loss_probability=0.3),
            branch_probs=BranchProbabilities(exception=0.3),
        )
        requests = run_all(server, SERVICES["Login"], 8)
        statuses = {(r.error, r.timed_out, r.fell_back) for r in requests}
        assert statuses  # every request terminated with *some* status


class TestMachineFailure:
    """Fleet-level failures: a server dying mid-run with work in flight."""

    def _run_with_failure(self, at_ns=1.5e6, machines=3, fail_index=0):
        from repro.cluster import ClusterConfig, MachineFailure, run_cluster

        config = ClusterConfig(
            policy="least-outstanding",
            machines=machines,
            requests_per_service=100,
            rate_rps=30000.0,
            seed=0,
            failures=(MachineFailure(at_ns=at_ns, machine=fail_index),),
        )
        services = [SERVICES["StoreP"], SERVICES["Login"]]
        return run_cluster(services, config)

    def test_every_request_terminates_with_sane_status(self):
        result = self._run_with_failure()
        assert result.machines_failed == 1
        assert result.total_censored() == 0, "a request never terminated"
        assert result.completed + result.lost == result.arrivals
        # The failure struck while work was in flight, and the
        # survivors absorbed the rerouted requests.
        assert result.rerouted > 0
        assert result.completed > 0

    def test_dead_machine_receives_no_further_work(self):
        result = self._run_with_failure()
        dead = [m for m in result.machine_stats if m["state"] == "dead"]
        assert len(dead) == 1
        (machine,) = dead
        # dispatched was frozen at death: no post-mortem routing.
        assert machine["dispatched"] == result.cluster.machine(
            machine["index"]
        ).dispatched_at_death
        assert machine["died_at_ns"] == 1.5e6
        assert machine["killed_inflight"] > 0
        assert machine["outstanding"] == 0

    def test_rerouted_latency_includes_failover_penalty(self):
        from repro.cluster import ClusterConfig, MachineFailure, run_cluster

        failed = self._run_with_failure()
        clean = run_cluster(
            [SERVICES["StoreP"], SERVICES["Login"]],
            ClusterConfig(
                policy="least-outstanding",
                machines=3,
                requests_per_service=100,
                rate_rps=30000.0,
                seed=0,
            ),
        )
        # Same seed, same arrivals; the failed run redid work, so its
        # total completed+lost matches but the mean latency cannot be
        # lower than the clean run's by more than noise -- in practice
        # it is strictly higher because reroutes restart from scratch
        # while keeping the original arrival timestamp.
        assert failed.arrivals == clean.arrivals
        assert failed.mean_ns() > 0

    def test_whole_fleet_dead_loses_inflight_work(self):
        from repro.cluster import ClusterConfig, MachineFailure, run_cluster

        config = ClusterConfig(
            machines=2,
            requests_per_service=50,
            rate_rps=30000.0,
            seed=0,
            failures=(
                MachineFailure(at_ns=1.0e6, machine=0),
                MachineFailure(at_ns=1.0e6, machine=1),
            ),
        )
        result = run_cluster([SERVICES["StoreP"]], config)
        assert result.machines_failed == 2
        assert result.lost > 0
        assert result.total_censored() == 0
        # Lost requests terminate with an explicit error status.
        assert result.completed + result.lost == result.arrivals


class TestFaultPlaneProperties:
    """Hypothesis: random fault mixes never break the bookkeeping.

    Whatever the fault plane throws at the system, every request must
    terminate with a consistent status, and the recovery counters must
    reconcile with the per-request bookkeeping.
    """

    from hypothesis import given, settings, strategies as st

    rates = st.floats(min_value=0.0, max_value=0.4)

    @settings(max_examples=15, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        architecture=st.sampled_from(["accelflow", "relief", "cohort"]),
        service=st.sampled_from(["UniqId", "StoreP"]),
        transient=rates,
        wedge=rates,
        dma_stall=rates,
        dma_corrupt=rates,
        flap=st.booleans(),
        mgr=st.booleans(),
    )
    def test_random_fault_mix_terminates_consistently(
        self,
        seed,
        architecture,
        service,
        transient,
        wedge,
        dma_stall,
        dma_corrupt,
        flap,
        mgr,
    ):
        from repro.faults import FaultConfig

        faults = FaultConfig(
            pe_transient_rate=transient,
            pe_wedge_rate=wedge,
            pe_wedge_ns=5e5,
            dma_stall_rate=dma_stall,
            dma_corruption_rate=dma_corrupt,
            noc_flap_interval_ns=1e5 if flap else 0.0,
            manager_outage_interval_ns=2e5 if mgr else 0.0,
            manager_outage_ns=3e5,
            watchdog_timeout_ns=2e5,
            backoff_base_ns=100.0,
        )
        server = SimulatedServer(architecture, faults=faults, seed=seed)
        requests = run_all(server, SERVICES[service], 4)

        plane = server.fault_plane
        recovery = server.orchestrator.recovery
        if not faults.enabled:
            assert plane is None and recovery is None
            assert not any(r.error or r.fell_back for r in requests)
            return

        # Injection accounting is internally consistent.
        stats = plane.stats()
        assert all(v >= 0.0 for v in stats.values())
        assert stats["total_injected"] == float(plane.total_injected())
        if architecture not in ("relief",):
            assert plane.manager_outages == 0

        # Recovery accounting reconciles with per-request bookkeeping.
        rstats = recovery.stats()
        assert all(v >= 0.0 for v in rstats.values())
        assert sum(r.step_retries for r in requests) == recovery.step_retries
        for request in requests:
            if request.timed_out:
                assert request.error
            assert request.complete_ns is not None
            assert request.latency_ns >= 0.0
            assert all(v >= 0.0 for v in request.components.values())

"""System-level property tests: invariants that must hold for any
workload, architecture and seed."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import TraceRegistry
from repro.core.encoding import accel_slots
from repro.server import RunConfig, SimulatedServer, run_experiment
from repro.workloads import social_network_services

SERVICES = social_network_services()
BY_NAME = {s.name: s for s in SERVICES}
REGISTRY = TraceRegistry.with_standard_templates()

ARCH_STRATEGY = st.sampled_from(
    ["non-acc", "cpu-centric", "relief", "cohort", "accelflow"]
)
SERVICE_STRATEGY = st.sampled_from(["UniqId", "StoreP", "Follow", "Login"])


class TestRequestInvariants:
    @given(arch=ARCH_STRATEGY, service=SERVICE_STRATEGY, seed=st.integers(0, 50))
    @settings(max_examples=25, deadline=None)
    def test_components_never_exceed_latency(self, arch, service, seed):
        server = SimulatedServer(arch, seed=seed)
        request = server.make_request(BY_NAME[service])
        done = server.submit(request)
        server.env.run(until=done)
        assert request.completed
        total_components = sum(request.components.values())
        # Attributed time can never exceed wall-clock latency for
        # services without parallelism; Follow's parallel chains and
        # Login's T6 fan-out legitimately overlap (bounded by 2x here).
        if service in ("UniqId", "StoreP"):
            assert total_components <= request.latency_ns * 1.001
        else:
            assert total_components <= request.latency_ns * 2.0

    @given(arch=ARCH_STRATEGY, seed=st.integers(0, 20))
    @settings(max_examples=15, deadline=None)
    def test_all_buckets_non_negative(self, arch, seed):
        server = SimulatedServer(arch, seed=seed)
        request = server.make_request(BY_NAME["Login"])
        done = server.submit(request)
        server.env.run(until=done)
        for bucket, value in request.components.items():
            assert value >= -1e-6, f"{bucket} went negative: {value}"

    @given(seed=st.integers(0, 30))
    @settings(max_examples=10, deadline=None)
    def test_same_seed_same_latency(self, seed):
        def run_one():
            server = SimulatedServer("accelflow", seed=seed)
            request = server.make_request(BY_NAME["StoreP"])
            server.env.run(until=server.submit(request))
            return request.latency_ns

        assert run_one() == run_one()


class TestConservation:
    @given(
        arch=ARCH_STRATEGY,
        service=SERVICE_STRATEGY,
        count=st.integers(5, 25),
        seed=st.integers(0, 10),
    )
    @settings(max_examples=12, deadline=None)
    def test_requests_complete_or_are_censored(self, arch, service, count, seed):
        config = RunConfig(
            architecture=arch,
            requests_per_service=count,
            seed=seed,
            arrival_mode="poisson",
            rate_rps=3000.0,
            warmup_fraction=0.0,
        )
        result = run_experiment([BY_NAME[service]], config)
        recorded = result.total_completed() + result.total_censored()
        assert recorded == count

    @given(seed=st.integers(0, 10))
    @settings(max_examples=8, deadline=None)
    def test_accelerator_ops_conserved(self, seed):
        """Completed hardware ops == ops attributed to requests when
        nothing falls back (generous queues, light load)."""
        server = SimulatedServer("accelflow", seed=seed)
        spec = BY_NAME["UniqId"]
        requests = [server.make_request(spec) for _ in range(10)]
        procs = [server.submit(r) for r in requests]
        server.env.run(until=server.env.all_of(procs))
        attributed = sum(r.accelerator_ops for r in requests)
        assert server.hardware.total_ops_completed() == attributed

    @given(seed=st.integers(0, 10))
    @settings(max_examples=8, deadline=None)
    def test_tenant_counter_returns_to_zero(self, seed):
        server = SimulatedServer("accelflow", seed=seed)
        spec = BY_NAME["CPost"]
        requests = [server.make_request(spec) for _ in range(4)]
        procs = [server.submit(r) for r in requests]
        server.env.run(until=server.env.all_of(procs))
        assert server.orchestrator.tenants.active_tenants == 0


class TestTraceInvariants:
    @given(
        name=st.sampled_from(sorted(REGISTRY.names())),
        fields=st.fixed_dictionaries(
            {},
            optional={
                "compressed": st.booleans(),
                "hit": st.booleans(),
                "found": st.booleans(),
                "exception": st.booleans(),
                "c_compressed": st.booleans(),
            },
        ),
    )
    @settings(max_examples=150)
    def test_resolution_bounded_by_static_slots(self, name, fields):
        trace = REGISTRY.get(name)
        path = trace.resolve(fields)
        assert path.total_accelerators() <= accel_slots(trace.nodes)

    @given(
        name=st.sampled_from(sorted(REGISTRY.names())),
        fields=st.fixed_dictionaries(
            {},
            optional={
                "compressed": st.booleans(),
                "hit": st.booleans(),
                "found": st.booleans(),
                "exception": st.booleans(),
                "c_compressed": st.booleans(),
            },
        ),
    )
    @settings(max_examples=150)
    def test_every_path_terminates_decisively(self, name, fields):
        """Every resolution either notifies the CPU or chains onward."""
        path = REGISTRY.get(name).resolve(fields)
        chains_on = path.next_trace is not None or any(
            arm.next_trace for arm in path.fanout_paths()
        )
        assert path.notified or chains_on

    @given(name=st.sampled_from(sorted(REGISTRY.names())))
    @settings(max_examples=30)
    def test_pairs_closed_over_kinds(self, name):
        trace = REGISTRY.get(name)
        kinds = set()
        for _, path in trace.all_paths():
            kinds.update(path.kinds())
            for arm in path.fanout_paths():
                kinds.update(arm.kinds())
        for src, dst in trace.accelerator_pairs():
            assert src in kinds and dst in kinds

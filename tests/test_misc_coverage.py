"""Coverage for remaining corners: arrival factories, remote scaling,
energy monotonicity, encoding limits."""

import pytest

from repro.orchestration import ARCHITECTURES
from repro.orchestration.base import REMOTE_ARCHITECTURE_SCALE
from repro.sim import RandomStreams
from repro.workloads import (
    ALIBABA_AVERAGE_RPS,
    alibaba_arrivals,
    azure_arrivals,
    serverless_functions,
    social_network_services,
    verify_average_rate,
)


class TestArrivalFactories:
    def test_alibaba_builds_one_generator_per_service(self):
        services = social_network_services()
        arrivals = alibaba_arrivals(services, RandomStreams(0))
        assert set(arrivals) == {s.name for s in services}
        for spec in services:
            assert arrivals[spec.name].rate_rps == spec.rate_rps

    def test_alibaba_rate_scale(self):
        services = social_network_services()
        arrivals = alibaba_arrivals(services, RandomStreams(0), rate_scale=2.0)
        assert arrivals["UniqId"].rate_rps == pytest.approx(
            2.0 * 30000.0
        )

    def test_alibaba_average_matches_paper(self):
        assert verify_average_rate(social_network_services())
        mean = sum(s.rate_rps for s in social_network_services()) / 8
        assert mean == pytest.approx(ALIBABA_AVERAGE_RPS, rel=0.02)

    def test_azure_is_spikier_than_alibaba(self):
        functions = serverless_functions()
        azure = azure_arrivals(functions, RandomStreams(0))
        alibaba = alibaba_arrivals(functions, RandomStreams(1))
        name = functions[0].name
        assert azure[name].burst_factor > alibaba[name].burst_factor


class TestRemoteScaling:
    def test_every_architecture_has_a_scale(self):
        for name in ARCHITECTURES:
            assert name in REMOTE_ARCHITECTURE_SCALE, name

    def test_software_baseline_defines_the_medians(self):
        assert REMOTE_ARCHITECTURE_SCALE["non-acc"] == 1.0

    def test_accelerated_dependencies_respond_faster(self):
        for name, scale in REMOTE_ARCHITECTURE_SCALE.items():
            if name != "non-acc":
                assert scale < 1.0, name
        assert (
            REMOTE_ARCHITECTURE_SCALE["accelflow"]
            <= REMOTE_ARCHITECTURE_SCALE["relief"]
        )


class TestEnergyMonotonicity:
    def test_more_accel_busy_time_more_energy(self):
        from repro.hw import AcceleratorKind, EnergyModel

        model = EnergyModel()
        low = model.accel_energy_j(AcceleratorKind.TCP, 1e9, 1e9, 8)
        high = model.accel_energy_j(AcceleratorKind.TCP, 1e9, 7e9, 8)
        assert high > low

    def test_orchestration_energy_grows_with_activity(self):
        from repro.hw import EnergyModel

        model = EnergyModel()
        idle = model.orchestration_energy_j(1e9, 0.0, 0)
        busy = model.orchestration_energy_j(1e9, 5e8, 100_000)
        assert busy > idle > 0


class TestEncodingLimits:
    def test_oversized_metadata_rejected(self):
        from repro.core import EncodingError
        from repro.core.encoding import encode_trace

        # 15 accels + many branches blow the metadata region while
        # staying within 16 accelerator slots is hard to construct; an
        # over-slot trace is the reliable failure mode.
        from repro.core.nodes import AccelStep
        from repro.core.trace import Trace
        from repro.hw import AcceleratorKind

        trace = Trace("big", [AccelStep(AcceleratorKind.SER) for _ in range(17)])
        with pytest.raises(EncodingError):
            encode_trace(trace)

    def test_registry_splits_and_links(self):
        from repro.core import TraceRegistry
        from repro.core.nodes import AccelStep
        from repro.core.trace import Trace
        from repro.hw import AcceleratorKind

        registry = TraceRegistry()
        registry.register(
            Trace("mega", [AccelStep(AcceleratorKind.TCP) for _ in range(33)])
        )
        assert "mega" in registry and "mega#1" in registry and "mega#2" in registry
        registry.validate_closed()
        # The split chain still executes 33 steps end to end.
        total = 0
        name = "mega"
        while name:
            path = registry.get(name).resolve({})
            total += len(path.steps)
            name = path.next_trace
        assert total == 33

"""Statistical sanity of the arrival generators.

The latency results are only as credible as the load that produces
them, so the generators' *empirical* rates are checked against their
nominal configuration over long seeded streams (deterministic: the
tolerances cannot flake).
"""

import statistics

from repro.sim import RandomStreams
from repro.workloads import make_arrivals
from repro.workloads.arrivals import MmppArrivals, PoissonArrivals

SECOND_NS = 1e9


def stream(name="arrivals", seed=1234):
    return RandomStreams(seed).stream(name)


def empirical_rate_rps(arrivals, count):
    total_ns = sum(arrivals.gaps(count))
    return count / (total_ns / SECOND_NS)


class TestPoissonRate:
    def test_empirical_rate_matches_nominal(self):
        for rate in (1000.0, 20000.0, 500000.0):
            arrivals = PoissonArrivals(rate, stream(seed=42))
            observed = empirical_rate_rps(arrivals, 20000)
            assert abs(observed - rate) / rate < 0.03

    def test_gap_cv_is_one(self):
        """Exponential gaps: the coefficient of variation is ~1."""
        arrivals = PoissonArrivals(50000.0, stream(seed=7))
        gaps = list(arrivals.gaps(20000))
        cv = statistics.stdev(gaps) / statistics.mean(gaps)
        assert 0.95 < cv < 1.05

    def test_seeded_stream_is_deterministic(self):
        first = list(PoissonArrivals(1000.0, stream(seed=9)).gaps(100))
        second = list(PoissonArrivals(1000.0, stream(seed=9)).gaps(100))
        assert first == second


class TestMmppRate:
    def test_state_weighted_rate_solves_to_nominal(self):
        """calm/burst rates satisfy the time-weighted average exactly."""
        for factor, share in ((4.0, 0.15), (10.0, 0.06), (2.0, 0.5)):
            mmpp = MmppArrivals(
                30000.0, stream(), burst_factor=factor, burst_share=share
            )
            weighted = mmpp.calm_rate * (1 - share) + mmpp.burst_rate * share
            assert abs(weighted - 30000.0) < 1e-6
            assert mmpp.burst_rate == mmpp.calm_rate * factor

    def test_empirical_average_rate_matches_nominal(self):
        # Long horizon: many regime dwells (mean dwell 20 ms, rate
        # 50K -> 100K arrivals span ~2 s, ~100 dwells).
        rate = 50000.0
        mmpp = MmppArrivals(rate, stream(seed=3), burst_factor=5.0,
                            burst_share=0.10)
        observed = empirical_rate_rps(mmpp, 100000)
        assert abs(observed - rate) / rate < 0.10

    def test_burst_state_is_actually_faster(self):
        mmpp = MmppArrivals(10000.0, stream(seed=11), burst_factor=8.0,
                            burst_share=0.2, mean_dwell_ns=5e6)
        calm_gaps, burst_gaps = [], []
        for _ in range(50000):
            in_burst = mmpp.in_burst
            gap = mmpp.next_gap_ns()
            (burst_gaps if in_burst else calm_gaps).append(gap)
        assert calm_gaps and burst_gaps
        # Regime-attributed mean gaps differ by roughly the factor.
        ratio = statistics.mean(calm_gaps) / statistics.mean(burst_gaps)
        assert ratio > 3.0

    def test_overdispersed_relative_to_poisson(self):
        """MMPP gap CV must exceed the exponential's CV of 1."""
        mmpp = MmppArrivals(50000.0, stream(seed=5), burst_factor=10.0,
                            burst_share=0.06)
        gaps = list(mmpp.gaps(50000))
        cv = statistics.stdev(gaps) / statistics.mean(gaps)
        assert cv > 1.05

    def test_seeded_stream_is_deterministic(self):
        def draw():
            return list(
                MmppArrivals(20000.0, stream(seed=21), burst_factor=6.0,
                             burst_share=0.15, mean_dwell_ns=2e6).gaps(500)
            )

        assert draw() == draw()


class TestFactory:
    def test_named_modes(self):
        poisson = make_arrivals("poisson", 1000.0, stream())
        assert isinstance(poisson, PoissonArrivals)
        alibaba = make_arrivals("alibaba", 1000.0, stream())
        assert isinstance(alibaba, MmppArrivals)
        assert alibaba.burst_factor == 5.0
        azure = make_arrivals("azure", 1000.0, stream())
        assert azure.burst_factor == 10.0

    def test_custom_mmpp_mode_honours_shape(self):
        mmpp = make_arrivals("mmpp", 1000.0, stream(), burst_factor=3.0,
                             burst_share=0.25, mean_dwell_ns=1e6)
        assert mmpp.burst_factor == 3.0
        assert mmpp.burst_share == 0.25
        assert mmpp.mean_dwell_ns == 1e6

    def test_unknown_mode_rejected(self):
        import pytest

        with pytest.raises(ValueError, match="unknown arrival mode"):
            make_arrivals("fractal", 1000.0, stream())

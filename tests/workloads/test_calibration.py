"""Tests pinning the calibration constants and their invariants.

The calibration module is the single source of the reproduction's free
constants. These tests lock the paper-quoted values (Fig 1 fractions,
RELIEF's 1.5 us manager occupancy, the 13.4K RPS Alibaba average) and
the orderings the orchestrator comparisons rely on, so an accidental
edit to one number fails loudly instead of silently reshaping figures.
"""

import dataclasses

import pytest

from repro.workloads.calibration import (
    ALIBABA_AVERAGE_RPS,
    AVERAGE_TAX_FRACTIONS,
    MS,
    US,
    BranchProbabilities,
    OrchestrationCosts,
    RemoteLatencies,
    TaxCategory,
)


class TestTaxCategories:
    def test_all_is_app_logic_plus_tax(self):
        assert TaxCategory.ALL == (TaxCategory.APP_LOGIC,) + TaxCategory.TAX
        assert TaxCategory.APP_LOGIC not in TaxCategory.TAX
        assert len(set(TaxCategory.ALL)) == len(TaxCategory.ALL)

    def test_fractions_cover_every_category_and_sum_to_one(self):
        assert set(AVERAGE_TAX_FRACTIONS) == set(TaxCategory.ALL)
        assert sum(AVERAGE_TAX_FRACTIONS.values()) == pytest.approx(1.0, abs=0.005)
        for name, fraction in AVERAGE_TAX_FRACTIONS.items():
            assert 0.0 < fraction < 1.0, name

    def test_figure1_headline_numbers(self):
        # Fig 1: AppLogic 20.7%, TCP 25.6% — the two largest categories.
        assert AVERAGE_TAX_FRACTIONS[TaxCategory.APP_LOGIC] == 0.207
        assert AVERAGE_TAX_FRACTIONS[TaxCategory.TCP] == 0.256
        assert max(AVERAGE_TAX_FRACTIONS, key=AVERAGE_TAX_FRACTIONS.get) == (
            TaxCategory.TCP
        )


class TestUnitConstants:
    def test_unit_scales(self):
        assert US == 1_000.0
        assert MS == 1_000_000.0
        assert MS == 1000 * US


class TestOrchestrationCosts:
    def test_paper_quoted_manager_occupancy(self):
        costs = OrchestrationCosts()
        assert costs.relief_manager_per_completion_ns == pytest.approx(1.5 * US)

    def test_cost_orderings_the_comparisons_rely_on(self):
        costs = OrchestrationCosts()
        # CPU-centric interrupt handling dwarfs RELIEF's hardware manager.
        assert costs.cpu_centric_per_completion_ns > (
            10 * costs.relief_manager_per_completion_ns
        )
        # Cohort: a statically linked pair hop is cheaper than a
        # software-shepherded hop, which beats a full interrupt.
        assert (
            costs.cohort_pair_hop_ns
            < costs.cohort_cpu_hop_ns
            < costs.cpu_centric_per_completion_ns
        )
        assert all(
            value > 0
            for value in dataclasses.asdict(costs).values()
        )

    def test_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            OrchestrationCosts().cohort_pair_hop_ns = 0.0


class TestRemoteLatencies:
    def test_dependency_latency_ordering(self):
        remotes = RemoteLatencies()
        assert (
            remotes.db_cache_ns
            < remotes.nested_rpc_ns
            < remotes.database_ns
            < remotes.http_ns
        )

    def test_loss_probability_matches_the_paper_rate(self):
        # 3.2 lost responses per million requests under bursty traffic.
        assert RemoteLatencies().loss_probability == pytest.approx(3.2e-6)

    def test_overrides_via_replace(self):
        fast = dataclasses.replace(RemoteLatencies(), database_ns=50 * US)
        assert fast.database_ns == 50 * US
        assert RemoteLatencies().database_ns == 220 * US


class TestBranchProbabilities:
    def test_as_dict_round_trips_every_field(self):
        probs = BranchProbabilities()
        as_dict = probs.as_dict()
        fields = {f.name for f in dataclasses.fields(probs)}
        assert set(as_dict) == fields
        for name, value in as_dict.items():
            assert getattr(probs, name) == value
            assert 0.0 <= value <= 1.0, name

    def test_custom_probabilities_flow_through(self):
        skewed = BranchProbabilities(hit=0.1)
        assert skewed.as_dict()["hit"] == 0.1
        with pytest.raises(dataclasses.FrozenInstanceError):
            skewed.hit = 0.9


def test_alibaba_average_rate():
    assert ALIBABA_AVERAGE_RPS == 13_400.0

"""Tests for the cost model, payload model and arrival generators."""

import pytest

from repro.core import TraceRegistry
from repro.hw import AcceleratorKind
from repro.hw.params import PROCESSOR_GENERATIONS
from repro.sim import RandomStreams
from repro.workloads import (
    ClosedBatch,
    CostModel,
    CpuSegment,
    MmppArrivals,
    PayloadModel,
    PoissonArrivals,
    TaxCategory,
    count_ops_by_category,
    social_network_services,
)

K = AcceleratorKind
REGISTRY = TraceRegistry.with_standard_templates()
SERVICES = {s.name: s for s in social_network_services()}


class TestCostModel:
    def make(self, generation=None):
        return CostModel(REGISTRY, generation=generation)

    def test_category_budget_is_respected(self):
        """Per-op time x op count == the service's category time."""
        model = self.make()
        spec = SERVICES["UniqId"]
        counts = count_ops_by_category(REGISTRY, spec)
        for kind, category in [
            (K.TCP, TaxCategory.TCP),
            (K.SER, TaxCategory.SERIALIZATION),
        ]:
            per_op = model.base_op_time_ns(spec, kind)
            total = per_op * counts[category]
            assert total == pytest.approx(spec.category_time_ns(category))

    def test_ops_are_fine_grained(self):
        """The paper: operations take tens of microseconds at most."""
        model = self.make()
        for spec in SERVICES.values():
            for kind in K:
                base = model.base_op_time_ns(spec, kind)
                assert base < 200_000.0  # well under 200 us

    def test_size_scaling_clamped(self):
        model = self.make()
        spec = SERVICES["UniqId"]
        assert model.size_scale(spec, 1) == CostModel.MIN_SIZE_SCALE
        assert model.size_scale(spec, 10_000_000) == CostModel.MAX_SIZE_SCALE
        assert model.size_scale(spec, int(spec.wire_median_bytes)) == pytest.approx(
            1.0, abs=0.01
        )

    def test_op_for_builds_sized_op(self):
        model = self.make()
        spec = SERVICES["ReadH"]
        op = model.op_for(spec, K.CMP, 2048)
        assert op.kind == K.CMP
        assert op.data_in > op.data_out  # compression shrinks

    def test_cpu_segments_sum_to_app_logic(self):
        model = self.make()
        spec = SERVICES["CPost"]
        segments = [s for s in spec.path if isinstance(s, CpuSegment)]
        total = sum(model.cpu_segment_ns(spec, s) for s in segments)
        assert total == pytest.approx(spec.app_logic_ns)

    def test_generation_scales_tax_and_app_differently(self):
        icelake = self.make(PROCESSOR_GENERATIONS["icelake"])
        haswell = self.make(PROCESSOR_GENERATIONS["haswell"])
        spec = SERVICES["UniqId"]
        assert haswell.base_op_time_ns(spec, K.TCP) > icelake.base_op_time_ns(
            spec, K.TCP
        )
        segment = [s for s in spec.path if isinstance(s, CpuSegment)][0]
        hw_ratio = haswell.cpu_segment_ns(spec, segment) / icelake.cpu_segment_ns(
            spec, segment
        )
        tax_ratio = haswell.base_op_time_ns(spec, K.TCP) / icelake.base_op_time_ns(
            spec, K.TCP
        )
        assert hw_ratio > tax_ratio  # app logic benefits more from new cores

    def test_software_chain_sums_ops(self):
        model = self.make()
        spec = SERVICES["UniqId"]
        single = model.base_op_time_ns(spec, K.TCP)
        chain = model.software_chain_ns(
            spec, [K.TCP, K.TCP], int(spec.wire_median_bytes)
        )
        assert chain == pytest.approx(2 * single, rel=0.02)


class TestPayloadModel:
    def make(self, median=1536.0):
        return PayloadModel(RandomStreams(0).stream("p"), median_bytes=median)

    def test_median_near_configured(self):
        model = self.make(2048.0)
        samples = sorted(model.sample_wire_size() for _ in range(4001))
        median = samples[len(samples) // 2]
        assert abs(median - 2048) / 2048 < 0.15

    def test_bounds_respected(self):
        model = self.make()
        for _ in range(500):
            size = model.sample_wire_size()
            assert PayloadModel.MIN_WIRE_BYTES <= size <= PayloadModel.MAX_WIRE_BYTES

    def test_long_tail_exists(self):
        model = self.make()
        samples = [model.sample_wire_size() for _ in range(5000)]
        assert max(samples) > 10 * 1536  # tens of KB tail (Fig 5)

    def test_ldb_carries_no_real_data(self):
        data_in, _ = PayloadModel.sizes_for(K.LDB, 2048)
        assert data_in < 256

    def test_compression_direction(self):
        cmp_in, cmp_out = PayloadModel.sizes_for(K.CMP, 1000)
        assert cmp_in > cmp_out
        dcmp_in, dcmp_out = PayloadModel.sizes_for(K.DCMP, 1000)
        assert dcmp_out > dcmp_in

    def test_bad_median_rejected(self):
        with pytest.raises(ValueError):
            self.make(0.0)


class TestArrivals:
    def test_poisson_mean_rate(self):
        gen = PoissonArrivals(10_000.0, RandomStreams(1).stream("a"))
        gaps = list(gen.gaps(20_000))
        mean_gap = sum(gaps) / len(gaps)
        assert mean_gap == pytest.approx(1e9 / 10_000.0, rel=0.05)

    def test_poisson_rejects_bad_rate(self):
        with pytest.raises(ValueError):
            PoissonArrivals(0.0, RandomStreams(1).stream("a"))

    def test_mmpp_average_rate_matches(self):
        gen = MmppArrivals(
            10_000.0, RandomStreams(2).stream("m"), burst_factor=4.0, burst_share=0.15
        )
        gaps = list(gen.gaps(40_000))
        rate = 1e9 / (sum(gaps) / len(gaps))
        assert rate == pytest.approx(10_000.0, rel=0.1)

    def test_mmpp_burstier_than_poisson(self):
        """The MMPP gap distribution has a higher coefficient of
        variation than the exponential's CV of 1."""
        gen = MmppArrivals(
            10_000.0, RandomStreams(3).stream("m"), burst_factor=8.0, burst_share=0.1
        )
        gaps = list(gen.gaps(40_000))
        mean = sum(gaps) / len(gaps)
        var = sum((g - mean) ** 2 for g in gaps) / len(gaps)
        cv = var ** 0.5 / mean
        assert cv > 1.05

    def test_mmpp_validation(self):
        stream = RandomStreams(0).stream("m")
        with pytest.raises(ValueError):
            MmppArrivals(0.0, stream)
        with pytest.raises(ValueError):
            MmppArrivals(100.0, stream, burst_factor=0.5)
        with pytest.raises(ValueError):
            MmppArrivals(100.0, stream, burst_share=1.5)

    def test_closed_batch(self):
        gen = ClosedBatch(think_time_ns=100.0)
        assert gen.next_gap_ns() == 100.0
        with pytest.raises(ValueError):
            ClosedBatch(-1.0)

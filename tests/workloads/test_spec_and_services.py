"""Tests for service specs, path accounting and the service suites."""

import pytest

from repro.core import TraceRegistry
from repro.workloads import (
    AVERAGE_TAX_FRACTIONS,
    CpuSegment,
    ParallelInvocations,
    ServiceSpec,
    TaxCategory,
    TraceInvocation,
    count_ops_by_category,
    expand_chain,
    hotel_reservation_services,
    media_services,
    most_common_state,
    relief_suite_registry,
    relief_suite_services,
    serverless_functions,
    social_network_services,
    total_accelerators,
    verify_average_rate,
)

REGISTRY = TraceRegistry.with_standard_templates()

#: Table IV accelerator counts.
TABLE_IV = {
    "CPost": 87,
    "ReadH": 28,
    "StoreP": 18,
    "Follow": 30,
    "Login": 29,
    "CUrls": 19,
    "UniqId": 9,
    "RegUsr": 25,
}


class TestSpecValidation:
    def _path(self):
        return (TraceInvocation("T1"), CpuSegment(), TraceInvocation("T2"))

    def test_fractions_must_sum_to_one(self):
        with pytest.raises(ValueError):
            ServiceSpec(
                name="bad",
                suite="t",
                total_time_ns=1e6,
                fractions={TaxCategory.APP_LOGIC: 0.5},
                path=self._path(),
                rate_rps=100.0,
            )

    def test_path_needs_cpu_segment(self):
        with pytest.raises(ValueError):
            ServiceSpec(
                name="bad",
                suite="t",
                total_time_ns=1e6,
                fractions=dict(AVERAGE_TAX_FRACTIONS),
                path=(TraceInvocation("T1"),),
                rate_rps=100.0,
            )

    def test_parallel_needs_two(self):
        with pytest.raises(ValueError):
            ParallelInvocations((TraceInvocation("T9"),))

    def test_cpu_segment_split_by_weight(self):
        spec = ServiceSpec(
            name="x",
            suite="t",
            total_time_ns=1_000_000.0,
            fractions=dict(AVERAGE_TAX_FRACTIONS),
            path=(
                TraceInvocation("T1"),
                CpuSegment(weight=3.0),
                CpuSegment(weight=1.0),
                TraceInvocation("T2"),
            ),
            rate_rps=100.0,
        )
        segments = [s for s in spec.path if isinstance(s, CpuSegment)]
        app = spec.app_logic_ns
        assert spec.cpu_segment_ns(segments[0]) == pytest.approx(app * 0.75)
        assert spec.cpu_segment_ns(segments[1]) == pytest.approx(app * 0.25)


class TestMostCommonState:
    def test_defaults(self):
        state = most_common_state({})
        assert state["hit"] and state["found"]
        assert not state["compressed"] and not state["exception"]

    def test_forced_overrides(self):
        state = most_common_state({"hit": False})
        assert not state["hit"]


class TestChainExpansion:
    def test_t4_expands_to_t5(self):
        paths = expand_chain(REGISTRY, TraceInvocation("T4", {"hit": True}))
        names = [repr(p) for p in paths]
        assert len(paths) == 2  # T4 then T5

    def test_login_chain_reaches_t7(self):
        paths = expand_chain(
            REGISTRY,
            TraceInvocation("T4", {"hit": False, "found": True}),
        )
        # T4 -> T5(miss) -> T6 -> (write-back arm) -> T7.
        assert len(paths) == 4

    def test_cycle_guard(self):
        from repro.core import atm_link, seq

        registry = TraceRegistry()
        registry.register(seq("Ser", "TCP", atm_link("loop"), name="loop"))
        with pytest.raises(ValueError):
            expand_chain(registry, TraceInvocation("loop"))


class TestSocialNetwork:
    def test_eight_services(self):
        assert len(social_network_services()) == 8

    @pytest.mark.parametrize("name,expected", sorted(TABLE_IV.items()))
    def test_table_iv_accelerator_counts(self, name, expected):
        spec = [s for s in social_network_services() if s.name == name][0]
        assert total_accelerators(REGISTRY, spec) == expected

    def test_rates_average_paper_value(self):
        assert verify_average_rate(social_network_services())

    def test_app_logic_fraction_near_paper_average(self):
        services = social_network_services()
        mean_app = sum(
            s.fractions[TaxCategory.APP_LOGIC] for s in services
        ) / len(services)
        assert mean_app == pytest.approx(0.207, abs=0.03)

    def test_short_services_are_tax_dominated(self):
        services = {s.name: s for s in social_network_services()}
        assert (
            services["UniqId"].fractions[TaxCategory.APP_LOGIC]
            < services["CPost"].fractions[TaxCategory.APP_LOGIC]
        )

    def test_every_nonzero_fraction_has_operations(self):
        """No service silently drops a tax category's time budget."""
        from repro.workloads import CostModel

        model = CostModel(REGISTRY)
        for spec in social_network_services():
            model.validate(spec)

    def test_login_covers_most_categories(self):
        spec = [s for s in social_network_services() if s.name == "Login"][0]
        counts = count_ops_by_category(REGISTRY, spec)
        nonzero = [c for c in TaxCategory.TAX if counts[c] > 0]
        assert len(nonzero) >= 5


class TestOtherSuites:
    def test_hotel_services_valid(self):
        services = hotel_reservation_services()
        assert len(services) == 6
        for spec in services:
            assert total_accelerators(REGISTRY, spec) > 0

    def test_media_services_valid(self):
        services = media_services()
        assert len(services) == 6
        for spec in services:
            assert total_accelerators(REGISTRY, spec) > 0

    def test_serverless_functions_valid(self):
        functions = serverless_functions()
        assert len(functions) == 8
        names = {f.name for f in functions}
        assert "ImgRot" in names and "MLServe" in names

    def test_serverless_shorter_than_microservices(self):
        functions = {f.name: f for f in serverless_functions()}
        assert functions["ImgRot"].total_time_ns < 1e6

    def test_relief_suite_chains_are_branch_free(self):
        registry = relief_suite_registry()
        for trace in registry.traces():
            assert not trace.has_branches

    def test_relief_suite_services_resolve(self):
        registry = relief_suite_registry()
        for spec in relief_suite_services():
            assert total_accelerators(registry, spec) >= 3

    def test_relief_suite_is_coarse_grained(self):
        registry = relief_suite_registry()
        for spec in relief_suite_services():
            # Coarse apps: few, fat operations (vs ~9-87 fine-grained
            # tax ops per microservice request).
            assert spec.total_time_ns >= 3e5
            assert total_accelerators(registry, spec) <= 6

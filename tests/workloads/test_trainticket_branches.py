"""Tests for the Train Ticket suite and the branch-statistics analysis."""


from repro.core import TraceRegistry
from repro.experiments import char_branches
from repro.workloads import CostModel, total_accelerators, train_ticket_services

REGISTRY = TraceRegistry.with_standard_templates()


class TestTrainTicketSuite:
    def test_six_services(self):
        assert len(train_ticket_services()) == 6

    def test_specs_are_consistent(self):
        model = CostModel(REGISTRY)
        for spec in train_ticket_services():
            model.validate(spec)
            assert total_accelerators(REGISTRY, spec) > 0

    def test_services_run_end_to_end(self):
        from repro.server import run_unloaded

        spec = train_ticket_services()[0]
        result = run_unloaded("accelflow", spec, requests=5)
        assert result.completed == 5


class TestBranchStatistics:
    def test_covers_all_four_suites(self):
        result = char_branches.run()
        assert set(result["shares"]) == {
            "socialnetwork",
            "hotel",
            "media",
            "trainticket",
        }

    def test_majority_of_chains_conditional(self):
        """The paper's Q2 takeaway: most accelerator sequences carry at
        least one conditional, so interrupting a CPU per branch would be
        ruinous."""
        result = char_branches.run()
        for suite, share in result["shares"].items():
            assert 0.5 < share <= 1.0, suite

    def test_shares_near_paper_band(self):
        result = char_branches.run()
        for suite, share in result["shares"].items():
            paper = char_branches.PAPER_CONDITIONAL_SHARE[suite]
            assert abs(share - paper) < 0.25, (suite, share, paper)


class TestUSuite:
    def test_four_benchmarks(self):
        from repro.workloads import usuite_services

        services = usuite_services()
        assert len(services) == 4
        names = {s.name for s in services}
        assert "HDSearch" in names and "Router" in names

    def test_specs_consistent_and_runnable(self):
        from repro.server import run_unloaded
        from repro.workloads import usuite_services

        model = CostModel(REGISTRY)
        for spec in usuite_services():
            model.validate(spec)
        result = run_unloaded("accelflow", usuite_services()[1], requests=4)
        assert result.completed == 4

    def test_leaf_services_are_short(self):
        from repro.workloads import usuite_services

        for spec in usuite_services():
            assert spec.total_time_ns <= 1.2e6  # mid-tier/leaf: <= 1.2 ms
